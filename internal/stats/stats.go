// Package stats collects simulation statistics: cycle counts, the GPU
// no-issue-cycle breakdown of Figure 8, traffic by link class, cache hit
// rates, NDP protocol counters, and NSU utilization (Figure 11).
//
// Every per-packet/per-cycle counter is a flat struct field or a fixed-size
// array indexed by a small enum (NoIssue, Traffic) — never a map — so the
// hot-path increment is a single add with no hashing; keep it that way. The
// only slice, NSUICodeBytes, is written once per NSU at spawn/finalize, off
// the packet path.
package stats

import (
	"fmt"
	"strings"
)

// StallKind classifies a GPU SM cycle in which no instruction was issued
// (Figure 8 of the paper).
type StallKind int

const (
	// ExecUnitBusy: a warp had a ready instruction but the execution unit
	// (ALU or LSU) could not accept it.
	ExecUnitBusy StallKind = iota
	// DependencyStall: an operand was not ready (scoreboard hazard),
	// including cache and DRAM access latency.
	DependencyStall
	// WarpIdle: no warp had a valid instruction to issue — empty
	// instruction buffer, no active thread, synchronization, or (in the
	// NDP system) warps blocked on an offload acknowledgment.
	WarpIdle
	numStallKinds
)

// String implements fmt.Stringer.
func (k StallKind) String() string {
	switch k {
	case ExecUnitBusy:
		return "ExecUnitBusy"
	case DependencyStall:
		return "DependencyStall"
	case WarpIdle:
		return "WarpIdle"
	default:
		return fmt.Sprintf("StallKind(%d)", int(k))
	}
}

// TrafficClass labels a link over which bytes were moved.
type TrafficClass int

const (
	// GPULink: GPU off-chip links to the HMCs (both directions).
	GPULink TrafficClass = iota
	// MemNet: inter-HMC memory-network links.
	MemNet
	// IntraHMC: vault-to-logic-layer movement inside one stack.
	IntraHMC
	numTrafficClasses
)

// String implements fmt.Stringer.
func (t TrafficClass) String() string {
	switch t {
	case GPULink:
		return "GPULink"
	case MemNet:
		return "MemNet"
	case IntraHMC:
		return "IntraHMC"
	default:
		return fmt.Sprintf("TrafficClass(%d)", int(t))
	}
}

// CacheStats accumulates hit/miss counts for one cache.
type CacheStats struct {
	Accesses      int64
	Hits          int64
	MSHRStalls    int64 // accesses rejected because MSHRs were full
	Evictions     int64
	Fills         int64
	Invalidations int64
}

// Misses returns Accesses-Hits.
func (c CacheStats) Misses() int64 { return c.Accesses - c.Hits }

// HitRate returns the hit fraction, or 0 when there were no accesses.
func (c CacheStats) HitRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Accesses)
}

// Stats is the top-level statistics bundle for one simulation run.
type Stats struct {
	// Time.
	SMCycles  int64 // elapsed SM-clock cycles
	ElapsedPS int64 // elapsed simulated picoseconds
	NSUCycles int64 // elapsed NSU-clock cycles

	// GPU issue behaviour.
	IssuedInstrs    int64                // warp-instructions issued on SMs
	IssuedThreadOps int64                // thread-instructions (warp instr x active threads)
	NoIssue         [numStallKinds]int64 // per SM-cycle classification, summed over SMs
	IssueCycles     int64                // SM-cycles in which at least one instr issued

	// NSU behaviour.
	NSUInstrs       int64
	NSUWarpCycleSum int64   // sum over NSU cycles of occupied warp slots
	NSUActiveCycles int64   // NSU cycles with at least one live warp
	NSUICodeBytes   []int64 // per-NSU (indexed by NSU id): distinct instruction bytes touched
	NSUWarpsSpawned int64
	NSUStallRDWait  int64 // NSU warp-cycles stalled waiting for read data
	NSUStallWrAck   int64 // NSU warp-cycles stalled waiting for write acks

	// Memory system.
	L1D             CacheStats
	L1I             CacheStats
	L2              CacheStats
	TLB             CacheStats // per-SM translation lookaside buffers, aggregated
	StackTLB        CacheStats // per-stack NDP TLBs (ndpage backend), aggregated
	DRAMReads       int64      // 128B read accesses at vaults
	DRAMWrites      int64
	DRAMActivations int64 // row activations
	DRAMRowHits     int64

	// Traffic in bytes by class.
	Traffic [numTrafficClasses]int64

	// NDP protocol counters.
	OffloadBlocksSeen      int64 // offload-block instances encountered
	OffloadBlocksOffloaded int64
	OffloadCmdPackets      int64
	RDFPackets             int64
	RDFCacheHits           int64 // RDF requests served from GPU caches
	WTAPackets             int64
	RDFRespPackets         int64
	AckPackets             int64
	InvalPackets           int64
	InvalBytes             int64
	PendingBufStalls       int64 // cycles a warp waited on pending-buffer space
	CreditStalls           int64 // reservation attempts rejected for lack of credits
	AckLatencySumPS        int64 // total offload begin->ack latency
	AckLatencyCount        int64

	// Per-offload-block instruction throughput, used by the dynamic ratio
	// controller and reported for debugging.
	OffloadRegionInstrs int64

	// Resilience counters (all zero on the fault-free path).
	OffloadRetries   int64 // offload instances re-sent after a timeout
	OffloadTimeouts  int64 // per-block timeouts that fired
	FallbackBlocks   int64 // blocks re-executed host-side after retry exhaustion
	QuarantinedNSUs  int64 // stacks written off by the offload controller
	ReroutedHops     int64 // mesh hops taken off the dimension-order path
	RouteUnreachable int64 // mesh packets dropped: no live path to destination
	DroppedPackets   int64 // mesh packets lost to injected drops
	CorruptedPackets int64 // mesh packets discarded at the CRC check
	StaleProtoPkts   int64 // protocol packets discarded as stale (old inst/attempt)
	NSUAbortedWarps  int64 // NSU warps abandoned past their abort deadline
	HMCOverflowHWM   int64 // max retry-overflow queue depth across stacks
	HMCOverflowStall int64 // inbox pops deferred because the overflow queue was full

	// Offload-ratio trace: ratio chosen at each epoch boundary.
	RatioTrace []float64

	// Energy in picojoules by component (filled by the energy model).
	Energy EnergyBreakdown
}

// EnergyBreakdown is the Figure 10 component split, in picojoules.
type EnergyBreakdown struct {
	GPU      float64 // SM dynamic+static, on-chip caches and wires
	NSU      float64
	IntraHMC float64 // logic-layer NoC within each stack
	OffChip  float64 // GPU links + memory network SerDes
	DRAM     float64 // activations + row reads/writes
}

// Total returns the summed energy.
func (e EnergyBreakdown) Total() float64 {
	return e.GPU + e.NSU + e.IntraHMC + e.OffChip + e.DRAM
}

// New returns an empty Stats ready for accumulation.
func New() *Stats {
	return &Stats{}
}

// AddNoIssue records one no-issue SM cycle of kind k.
func (s *Stats) AddNoIssue(k StallKind) { s.NoIssue[k]++ }

// AddNoIssueN records n no-issue SM cycles of kind k in one step (used by
// the idle-skip fast path to batch provably-identical cycles).
func (s *Stats) AddNoIssueN(k StallKind, n int64) { s.NoIssue[k] += n }

// SetNSUICode records the distinct instruction-byte footprint of one NSU,
// growing the per-NSU slice as needed.
func (s *Stats) SetNSUICode(id int, bytes int64) {
	for len(s.NSUICodeBytes) <= id {
		s.NSUICodeBytes = append(s.NSUICodeBytes, 0)
	}
	s.NSUICodeBytes[id] = bytes
}

// NoIssueTotal returns the total number of no-issue SM cycles.
func (s *Stats) NoIssueTotal() int64 {
	var t int64
	for _, v := range s.NoIssue {
		t += v
	}
	return t
}

// AddTraffic records n bytes moved on a link of class c.
func (s *Stats) AddTraffic(c TrafficClass, n int64) { s.Traffic[c] += n }

// IPC returns issued warp-instructions per SM-cycle (aggregate over SMs).
func (s *Stats) IPC() float64 {
	if s.SMCycles == 0 {
		return 0
	}
	return float64(s.IssuedInstrs) / float64(s.SMCycles)
}

// NSUOccupancy returns the mean fraction of NSU warp slots occupied while
// the simulation ran, given the number of slots per NSU and the NSU count.
func (s *Stats) NSUOccupancy(slotsPerNSU, numNSUs int) float64 {
	if s.NSUCycles == 0 || slotsPerNSU == 0 || numNSUs == 0 {
		return 0
	}
	return float64(s.NSUWarpCycleSum) / (float64(s.NSUCycles) * float64(slotsPerNSU) * float64(numNSUs))
}

// ICacheUtilization returns the mean fraction of NSU instruction-cache bytes
// that held live NSU code, across NSUs.
func (s *Stats) ICacheUtilization(icacheBytes int) float64 {
	if len(s.NSUICodeBytes) == 0 || icacheBytes == 0 {
		return 0
	}
	var sum float64
	for _, b := range s.NSUICodeBytes {
		u := float64(b) / float64(icacheBytes)
		if u > 1 {
			u = 1
		}
		sum += u
	}
	return sum / float64(len(s.NSUICodeBytes))
}

// OffChipTraffic returns total bytes crossing the GPU's off-chip links.
func (s *Stats) OffChipTraffic() int64 { return s.Traffic[GPULink] }

// InvalOverhead returns invalidation traffic as a fraction of GPU off-chip
// traffic (§4.2 reports up to 1.42%, 0.38% average).
func (s *Stats) InvalOverhead() float64 {
	if s.Traffic[GPULink] == 0 {
		return 0
	}
	return float64(s.InvalBytes) / float64(s.Traffic[GPULink])
}

// String renders a human-readable multi-line summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles(SM)=%d ipc=%.3f issued=%d\n", s.SMCycles, s.IPC(), s.IssuedInstrs)
	fmt.Fprintf(&b, "no-issue: exec-busy=%d dep-stall=%d warp-idle=%d\n",
		s.NoIssue[ExecUnitBusy], s.NoIssue[DependencyStall], s.NoIssue[WarpIdle])
	fmt.Fprintf(&b, "L1D hit=%.3f (%d/%d)  L2 hit=%.3f (%d/%d)\n",
		s.L1D.HitRate(), s.L1D.Hits, s.L1D.Accesses, s.L2.HitRate(), s.L2.Hits, s.L2.Accesses)
	fmt.Fprintf(&b, "dram: reads=%d writes=%d act=%d rowhit=%d\n",
		s.DRAMReads, s.DRAMWrites, s.DRAMActivations, s.DRAMRowHits)
	fmt.Fprintf(&b, "traffic: gpu-link=%d memnet=%d intra-hmc=%d inval=%d\n",
		s.Traffic[GPULink], s.Traffic[MemNet], s.Traffic[IntraHMC], s.InvalBytes)
	fmt.Fprintf(&b, "ndp: seen=%d offloaded=%d cmd=%d rdf=%d (cache-hit %d) wta=%d ack=%d\n",
		s.OffloadBlocksSeen, s.OffloadBlocksOffloaded, s.OffloadCmdPackets,
		s.RDFPackets, s.RDFCacheHits, s.WTAPackets, s.AckPackets)
	if s.FaultActivity() {
		fmt.Fprintf(&b, "resilience: retries=%d timeouts=%d fallback=%d quarantined=%d rerouted=%d unreachable=%d dropped=%d corrupt=%d stale=%d nsu-aborts=%d overflow-hwm=%d\n",
			s.OffloadRetries, s.OffloadTimeouts, s.FallbackBlocks, s.QuarantinedNSUs,
			s.ReroutedHops, s.RouteUnreachable, s.DroppedPackets, s.CorruptedPackets,
			s.StaleProtoPkts, s.NSUAbortedWarps, s.HMCOverflowHWM)
	}
	return b.String()
}

// FaultActivity reports whether any resilience counter is nonzero, i.e.
// whether injected faults actually perturbed the run.
func (s *Stats) FaultActivity() bool {
	return s.OffloadRetries|s.OffloadTimeouts|s.FallbackBlocks|s.QuarantinedNSUs|
		s.ReroutedHops|s.RouteUnreachable|s.DroppedPackets|s.CorruptedPackets|
		s.StaleProtoPkts|s.NSUAbortedWarps|s.HMCOverflowStall != 0
}

// fold adds src's cache counters into c.
func (c *CacheStats) fold(src CacheStats) {
	c.Accesses += src.Accesses
	c.Hits += src.Hits
	c.MSHRStalls += src.MSHRStalls
	c.Evictions += src.Evictions
	c.Fills += src.Fills
	c.Invalidations += src.Invalidations
}

// FoldInto merges the shard-local counter bundle src into dst. Parallel
// execution gives every shard (each SM, each memory stack) its own Stats so
// hot-path increments never contend; the bundles are folded into the main
// Stats exactly once, at finalize, in shard index order.
//
// Every integer counter is a plain sum, which commutes, with two exceptions:
// HMCOverflowHWM is a high-water mark (max-merge) and NSUICodeBytes is
// per-NSU indexed (each shard writes only its own index, so max-merge per
// index is an exact union). RatioTrace and Energy are coordinator-only —
// appended serially at epoch boundaries and filled by the energy model after
// the run — so shard bundles never carry them and they are not merged here.
// TestFoldIntoCoversAllCounters enforces by reflection that every integer
// field of Stats is handled.
func FoldInto(dst, src *Stats) {
	dst.SMCycles += src.SMCycles
	dst.ElapsedPS += src.ElapsedPS
	dst.NSUCycles += src.NSUCycles

	dst.IssuedInstrs += src.IssuedInstrs
	dst.IssuedThreadOps += src.IssuedThreadOps
	for k := range dst.NoIssue {
		dst.NoIssue[k] += src.NoIssue[k]
	}
	dst.IssueCycles += src.IssueCycles

	dst.NSUInstrs += src.NSUInstrs
	dst.NSUWarpCycleSum += src.NSUWarpCycleSum
	dst.NSUActiveCycles += src.NSUActiveCycles
	for id, b := range src.NSUICodeBytes {
		for len(dst.NSUICodeBytes) <= id {
			dst.NSUICodeBytes = append(dst.NSUICodeBytes, 0)
		}
		if b > dst.NSUICodeBytes[id] {
			dst.NSUICodeBytes[id] = b
		}
	}
	dst.NSUWarpsSpawned += src.NSUWarpsSpawned
	dst.NSUStallRDWait += src.NSUStallRDWait
	dst.NSUStallWrAck += src.NSUStallWrAck

	dst.L1D.fold(src.L1D)
	dst.L1I.fold(src.L1I)
	dst.L2.fold(src.L2)
	dst.TLB.fold(src.TLB)
	dst.StackTLB.fold(src.StackTLB)
	dst.DRAMReads += src.DRAMReads
	dst.DRAMWrites += src.DRAMWrites
	dst.DRAMActivations += src.DRAMActivations
	dst.DRAMRowHits += src.DRAMRowHits

	for c := range dst.Traffic {
		dst.Traffic[c] += src.Traffic[c]
	}

	dst.OffloadBlocksSeen += src.OffloadBlocksSeen
	dst.OffloadBlocksOffloaded += src.OffloadBlocksOffloaded
	dst.OffloadCmdPackets += src.OffloadCmdPackets
	dst.RDFPackets += src.RDFPackets
	dst.RDFCacheHits += src.RDFCacheHits
	dst.WTAPackets += src.WTAPackets
	dst.RDFRespPackets += src.RDFRespPackets
	dst.AckPackets += src.AckPackets
	dst.InvalPackets += src.InvalPackets
	dst.InvalBytes += src.InvalBytes
	dst.PendingBufStalls += src.PendingBufStalls
	dst.CreditStalls += src.CreditStalls
	dst.AckLatencySumPS += src.AckLatencySumPS
	dst.AckLatencyCount += src.AckLatencyCount

	dst.OffloadRegionInstrs += src.OffloadRegionInstrs

	dst.OffloadRetries += src.OffloadRetries
	dst.OffloadTimeouts += src.OffloadTimeouts
	dst.FallbackBlocks += src.FallbackBlocks
	dst.QuarantinedNSUs += src.QuarantinedNSUs
	dst.ReroutedHops += src.ReroutedHops
	dst.RouteUnreachable += src.RouteUnreachable
	dst.DroppedPackets += src.DroppedPackets
	dst.CorruptedPackets += src.CorruptedPackets
	dst.StaleProtoPkts += src.StaleProtoPkts
	dst.NSUAbortedWarps += src.NSUAbortedWarps
	if src.HMCOverflowHWM > dst.HMCOverflowHWM {
		dst.HMCOverflowHWM = src.HMCOverflowHWM
	}
	dst.HMCOverflowStall += src.HMCOverflowStall
}

// MergeICode folds per-NSU instruction-byte footprints into sorted order for
// deterministic output; helper for reports.
func (s *Stats) MergeICode() []int {
	ids := make([]int, len(s.NSUICodeBytes))
	for id := range ids {
		ids[id] = id
	}
	return ids
}
