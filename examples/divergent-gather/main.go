// Divergent gather: demonstrates the §4.4 bandwidth saving. The kernel
// computes out[i] = table[idx[i]] where idx is a random permutation, so each
// warp load touches up to 32 different cache lines and uses only 4 bytes of
// each. The baseline fetches whole 128-byte lines across the GPU links; the
// NDP system offloads the gather as a single-instruction indirect block and
// ships back only the touched words.
//
//	go run ./examples/divergent-gather
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ndpgpu/internal/analyzer"
	"ndpgpu/internal/config"
	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
	"ndpgpu/internal/sim"
	"ndpgpu/internal/vm"
)

const n = 256 * 1024 // 1 MB table

func build(mem *vm.System) (*kernel.Kernel, func() error) {
	idx := mem.Alloc(4 * n)
	table := mem.Alloc(4 * n)
	out := mem.Alloc(4 * n)
	rng := rand.New(rand.NewSource(7))
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		mem.Write32(idx+uint64(4*i), uint32(perm[i]))
		mem.WriteF32(table+uint64(4*i), float32(i)*0.25)
	}

	kb := kernel.NewBuilder()
	kb.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
	kb.Op3(isa.ADD, 17, kernel.RegParam0, 16)
	kb.Ld(18, 17, 0) // j = idx[i] (coalesced)
	kb.OpImm(isa.SHLI, 19, 18, 2)
	kb.Op3(isa.ADD, 20, kernel.RegParam0+1, 19)
	kb.Ld(21, 20, 0) // v = table[j]  <- divergent indirect gather
	kb.Op3(isa.ADD, 22, kernel.RegParam0+2, 16)
	kb.St(22, 0, 21)
	kb.Exit()
	k := kb.MustBuild("gather", n/256, 256, idx, table, out)

	verify := func() error {
		for i := 0; i < n; i += 4999 {
			want := float32(perm[i]) * 0.25
			if got := mem.ReadF32(out + uint64(4*i)); got != want {
				return fmt.Errorf("out[%d] = %v, want %v", i, got, want)
			}
		}
		return nil
	}
	return k, verify
}

func main() {
	cfg := config.Default()
	// Shrink the L2 so the example's 1 MB gather table genuinely misses
	// (at full Table 2 scale you would use a table several times the 2 MB
	// L2; this keeps the example fast).
	cfg.GPU.L2.SizeBytes = 256 << 10

	// Show what the compiler pass found.
	{
		mem := vm.New(cfg)
		k, _ := build(mem)
		prog, err := analyzer.Analyze(k, analyzer.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		for _, b := range prog.Blocks {
			kind := "regular"
			if b.Indirect {
				kind = "indirect (§4.4)"
			}
			fmt.Printf("offload block %d: %d NSU instrs, %d LD / %d ST, %s\n",
				b.ID, b.NSUInstrs(), b.NumLD, b.NumST, kind)
		}
	}

	for _, mode := range []sim.Mode{sim.Baseline, sim.DynCache} {
		mem := vm.New(cfg)
		k, verify := build(mem)
		m, err := sim.Launch(cfg, k, mem, mode)
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Run(0)
		if err != nil {
			log.Fatal(err)
		}
		if err := verify(); err != nil {
			log.Fatal(err)
		}
		st := res.Stats
		fmt.Printf("%-16s %8.2f us   GPU-link %6d KB   memnet %6d KB\n",
			mode.Name, float64(res.TimePS)/1e6,
			st.OffChipTraffic()/1024, st.Traffic[1]/1024)
	}
}
