package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Drift is one numeric leaf that differs between two JSON documents beyond
// its tolerance, or a leaf present on only one side.
type Drift struct {
	Path    string
	A, B    float64
	Rel     float64 // relative difference |a-b| / max(|a|,|b|,1)
	Missing string  // "a" or "b" when the leaf exists on one side only
}

// String renders the drift for the diff report.
func (d Drift) String() string {
	if d.Missing != "" {
		have, val := "a", d.A
		if d.Missing == "a" {
			have, val = "b", d.B
		}
		return fmt.Sprintf("%-40s only in %s (%g)", d.Path, have, val)
	}
	return fmt.Sprintf("%-40s a=%g b=%g (rel %.4g)", d.Path, d.A, d.B, d.Rel)
}

// Tolerances maps a path prefix to a relative tolerance; the longest
// matching prefix wins, and Default applies when none matches.
type Tolerances struct {
	Default  float64
	ByPrefix map[string]float64
}

// forPath resolves the tolerance for one leaf path.
func (t Tolerances) forPath(p string) float64 {
	best, bestLen := t.Default, -1
	for prefix, tol := range t.ByPrefix {
		if strings.HasPrefix(p, prefix) && len(prefix) > bestLen {
			best, bestLen = tol, len(prefix)
		}
	}
	return best
}

// flatten walks an unmarshaled JSON document and collects every numeric leaf
// into out, keyed by a dotted/bracketed path ("stats.NoIssue[2]").
func flatten(prefix string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if prefix != "" {
				p = prefix + "." + k
			}
			flatten(p, child, out)
		}
	case []any:
		for i, child := range x {
			flatten(prefix+"["+strconv.Itoa(i)+"]", child, out)
		}
	case float64:
		out[prefix] = x
	case bool:
		b := 0.0
		if x {
			b = 1
		}
		out[prefix] = b
	}
	// Strings and nulls are identity/annotation fields, not measurements.
}

// DiffJSON compares the numeric leaves of two JSON documents under the given
// per-path tolerances and returns every drift, sorted by path. Any two
// documents with numeric content diff — metrics runs, golden stat digests,
// benchmark records.
func DiffJSON(a, b []byte, tol Tolerances) ([]Drift, error) {
	var da, db any
	if err := json.Unmarshal(a, &da); err != nil {
		return nil, fmt.Errorf("first input: %w", err)
	}
	if err := json.Unmarshal(b, &db); err != nil {
		return nil, fmt.Errorf("second input: %w", err)
	}
	fa := map[string]float64{}
	fb := map[string]float64{}
	flatten("", da, fa)
	flatten("", db, fb)

	paths := make([]string, 0, len(fa)+len(fb))
	for p := range fa {
		paths = append(paths, p)
	}
	for p := range fb {
		if _, ok := fa[p]; !ok {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)

	var drifts []Drift
	for _, p := range paths {
		va, oka := fa[p]
		vb, okb := fb[p]
		switch {
		case !oka:
			drifts = append(drifts, Drift{Path: p, B: vb, Missing: "a"})
		case !okb:
			drifts = append(drifts, Drift{Path: p, A: va, Missing: "b"})
		default:
			if va == vb {
				continue
			}
			den := math.Max(math.Max(math.Abs(va), math.Abs(vb)), 1)
			rel := math.Abs(va-vb) / den
			if rel > tol.forPath(p) {
				drifts = append(drifts, Drift{Path: p, A: va, B: vb, Rel: rel})
			}
		}
	}
	return drifts, nil
}
