package timing

import "testing"

// sparseTicker models a component that does real work only when simulated
// time crosses a multiple of gap, and is provably idle in between — the
// pattern idle skipping exploits. Between bursts it still counts its cycles,
// so it needs IdleSkipper to stay exact under skipping.
type sparseTicker struct {
	gap   PS
	ticks int64
	work  int64
}

func (s *sparseTicker) Tick(now PS) {
	s.ticks++
	if now%s.gap == 0 {
		s.work++
	}
}

func (s *sparseTicker) NextWorkAt(now PS) PS {
	if now%s.gap == 0 {
		return now
	}
	return (now/s.gap + 1) * s.gap
}

func (s *sparseTicker) SkipIdle(n int64) { s.ticks += n }

func benchEngine(b *testing.B, gap PS, skip bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		e.SetIdleSkip(skip)
		for _, mhz := range []int{700, 1250} {
			d := e.AddDomain("core", PeriodFromMHz(mhz))
			d.Attach(&sparseTicker{gap: gap})
		}
		dram := e.AddDomain("dram", 1500)
		dram.Attach(&sparseTicker{gap: gap})
		e.RunUntil(func() bool { return false }, 10_000_000) // 10 simulated µs
	}
}

// BenchmarkEngineIdleSkip measures the engine's edge dispatch with work
// bursts 100 ns apart (sparse — skipping retires long idle stretches in
// O(1)) and 3 ns apart (busy — skipping degenerates to near-dense firing,
// bounding its overhead). The dense variants fire every edge and are the
// reference cost.
func BenchmarkEngineIdleSkip(b *testing.B) {
	for _, c := range []struct {
		name string
		gap  PS
		skip bool
	}{
		{"sparse/skip", 100_000, true},
		{"sparse/dense", 100_000, false},
		{"busy/skip", 3_000, true},
		{"busy/dense", 3_000, false},
	} {
		b.Run(c.name, func(b *testing.B) { benchEngine(b, c.gap, c.skip) })
	}
}
