package stats

import (
	"reflect"
	"testing"
)

// setIntLeaves sets every int64 leaf reachable from v (fields, fixed arrays,
// nested structs) to val, and returns how many leaves were set. Slices are
// handled by the caller; float fields (coordinator-only) are skipped.
func setIntLeaves(v reflect.Value, val int64) int {
	switch v.Kind() {
	case reflect.Int64:
		v.SetInt(val)
		return 1
	case reflect.Struct:
		n := 0
		for i := 0; i < v.NumField(); i++ {
			n += setIntLeaves(v.Field(i), val)
		}
		return n
	case reflect.Array:
		n := 0
		for i := 0; i < v.Len(); i++ {
			n += setIntLeaves(v.Index(i), val)
		}
		return n
	default:
		return 0
	}
}

// countNonzeroIntLeaves counts int64 leaves with a nonzero value.
func countNonzeroIntLeaves(v reflect.Value) int {
	switch v.Kind() {
	case reflect.Int64:
		if v.Int() != 0 {
			return 1
		}
		return 0
	case reflect.Struct:
		n := 0
		for i := 0; i < v.NumField(); i++ {
			n += countNonzeroIntLeaves(v.Field(i))
		}
		return n
	case reflect.Array:
		n := 0
		for i := 0; i < v.Len(); i++ {
			n += countNonzeroIntLeaves(v.Index(i))
		}
		return n
	default:
		return 0
	}
}

// TestFoldIntoCoversAllCounters sets every integer counter of a source Stats
// to a nonzero value by reflection and checks that FoldInto propagates each
// one into a zero destination. A counter added to Stats but forgotten in
// FoldInto shows up here as a zero leaf.
func TestFoldIntoCoversAllCounters(t *testing.T) {
	src := New()
	want := setIntLeaves(reflect.ValueOf(src).Elem(), 7)
	if want == 0 {
		t.Fatal("reflection found no int64 counters in Stats")
	}
	src.NSUICodeBytes = []int64{7, 7, 7}

	dst := New()
	FoldInto(dst, src)

	got := countNonzeroIntLeaves(reflect.ValueOf(dst).Elem())
	if got != want {
		t.Fatalf("FoldInto propagated %d of %d integer counters; a Stats field is missing from FoldInto", got, want)
	}
	if len(dst.NSUICodeBytes) != 3 {
		t.Fatalf("NSUICodeBytes not merged: got len %d, want 3", len(dst.NSUICodeBytes))
	}
	for i, b := range dst.NSUICodeBytes {
		if b != 7 {
			t.Fatalf("NSUICodeBytes[%d] = %d, want 7", i, b)
		}
	}

	// Sums must accumulate and the high-water mark must max-merge.
	src2 := New()
	src2.DRAMReads = 3
	src2.HMCOverflowHWM = 2 // below dst's 7: must not regress
	FoldInto(dst, src2)
	if dst.DRAMReads != 10 {
		t.Fatalf("DRAMReads = %d after second fold, want 10", dst.DRAMReads)
	}
	if dst.HMCOverflowHWM != 7 {
		t.Fatalf("HMCOverflowHWM = %d, want 7 (max-merge)", dst.HMCOverflowHWM)
	}
}
