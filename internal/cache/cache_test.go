package cache

import (
	"testing"
	"testing/quick"

	"ndpgpu/internal/config"
)

func small() *Cache {
	// 2 sets x 2 ways x 128B lines, 2 MSHRs.
	return New(config.CacheGeom{SizeBytes: 512, Ways: 2, LineBytes: 128, MSHRs: 2})
}

func TestMissThenHit(t *testing.T) {
	c := small()
	if c.Lookup(0x1000) {
		t.Fatal("cold cache should miss")
	}
	c.Fill(0x1000)
	if !c.Lookup(0x1000) {
		t.Fatal("filled line should hit")
	}
	if !c.Lookup(0x1040) { // same 128B line
		t.Fatal("same-line offset should hit")
	}
	if c.Stats.Accesses != 3 || c.Stats.Hits != 2 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small()
	// Set index = (addr>>7) & 1. Lines 0x0000, 0x0100, 0x0200 share set 0.
	c.Fill(0x0000)
	c.Fill(0x0100)
	c.Lookup(0x0000) // make 0x0000 MRU
	c.Fill(0x0200)   // evicts LRU = 0x0100
	if !c.Contains(0x0000) {
		t.Fatal("MRU line evicted")
	}
	if c.Contains(0x0100) {
		t.Fatal("LRU line not evicted")
	}
	if !c.Contains(0x0200) {
		t.Fatal("new line missing")
	}
	if c.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats.Evictions)
	}
}

func TestFillIdempotent(t *testing.T) {
	c := small()
	c.Fill(0x1000)
	c.Fill(0x1000)
	if c.Stats.Fills != 1 {
		t.Fatalf("duplicate fill allocated twice: %+v", c.Stats)
	}
}

func TestInvalidate(t *testing.T) {
	c := small()
	c.Fill(0x1000)
	if !c.Invalidate(0x1020) {
		t.Fatal("invalidate of present line returned false")
	}
	if c.Contains(0x1000) {
		t.Fatal("line still present after invalidate")
	}
	if c.Invalidate(0x1000) {
		t.Fatal("invalidate of absent line returned true")
	}
	if c.Stats.Invalidations != 1 {
		t.Fatalf("invalidations = %d", c.Stats.Invalidations)
	}
}

func TestMSHRMergeAndLimit(t *testing.T) {
	c := small()
	ok, primary := c.MSHRReserve(0x1000)
	if !ok || !primary {
		t.Fatal("first reserve should be primary")
	}
	ok, primary = c.MSHRReserve(0x1010) // same line: merge
	if !ok || primary {
		t.Fatal("same-line reserve should merge, not be primary")
	}
	ok, primary = c.MSHRReserve(0x2000)
	if !ok || !primary {
		t.Fatal("second line reserve should be primary")
	}
	ok, _ = c.MSHRReserve(0x3000) // MSHRs full (2)
	if ok {
		t.Fatal("third line should be rejected: MSHRs full")
	}
	if c.Stats.MSHRStalls != 1 {
		t.Fatalf("MSHR stalls = %d", c.Stats.MSHRStalls)
	}
	if n := c.MSHRRelease(0x1000); n != 2 {
		t.Fatalf("release returned %d merged requests, want 2", n)
	}
	if !c.Contains(0x1000) {
		t.Fatal("release should fill the line")
	}
	if c.MSHRInFlight() != 1 {
		t.Fatalf("in flight = %d, want 1", c.MSHRInFlight())
	}
	if n := c.MSHRRelease(0x9000); n != 0 {
		t.Fatalf("release of unknown line returned %d", n)
	}
}

func TestFlush(t *testing.T) {
	c := small()
	c.Fill(0x1000)
	c.Fill(0x2000)
	c.Flush()
	if c.Contains(0x1000) || c.Contains(0x2000) {
		t.Fatal("flush left lines present")
	}
}

func TestLine(t *testing.T) {
	c := small()
	if got := c.Line(0x12345); got != 0x12300 {
		t.Fatalf("Line = %#x, want %#x", got, 0x12300)
	}
}

func TestWorkingSetFitsProperty(t *testing.T) {
	// Property: a working set no larger than the cache always hits after
	// one warm-up pass (LRU with no conflict overflow: use one set's worth).
	f := func(seed uint8) bool {
		c := New(config.CacheGeom{SizeBytes: 8 << 10, Ways: 4, LineBytes: 128, MSHRs: 8})
		base := uint64(seed) << 13
		// 16 sets x 4 ways; touch 16 lines (one per set) twice.
		for pass := 0; pass < 2; pass++ {
			for i := uint64(0); i < 16; i++ {
				addr := base + i*128
				if !c.Lookup(addr) {
					if pass == 1 {
						return false
					}
					c.Fill(addr)
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHitRateAccounting(t *testing.T) {
	c := small()
	for i := 0; i < 10; i++ {
		if !c.Lookup(0x1000) {
			c.Fill(0x1000)
		}
	}
	if got := c.Stats.HitRate(); got != 0.9 {
		t.Fatalf("hit rate = %v, want 0.9", got)
	}
	if c.Stats.Misses() != 1 {
		t.Fatalf("misses = %d", c.Stats.Misses())
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(config.CacheGeom{SizeBytes: 100, Ways: 3, LineBytes: 7})
}
