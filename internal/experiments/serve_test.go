package experiments

import (
	"net/http/httptest"
	"testing"

	"ndpgpu/internal/serve"
	"ndpgpu/internal/sim"
)

// TestUseServerRoundTrip runs the same leg locally and through the full
// ndpsweep -server transport (HTTP client -> ndpserve -> ServeRunner) and
// requires identical results: digest, simulated time, and the client-side
// recomputed energy. This is the contract that lets a sweep transparently
// swap local execution for served execution.
func TestUseServerRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	cfg := sim.AuditConfig()

	local := RunOneWith(cfg, "VADD", sim.DynNDP, 1, nil)
	if local.Err != nil {
		t.Fatal(local.Err)
	}

	sched := serve.New(serve.Options{Workers: 2, QueueCap: 16, Runner: ServeRunner()})
	ts := httptest.NewServer(serve.NewServer(sched))
	defer func() {
		ts.Close()
		sched.Shutdown()
	}()

	if err := UseServer(ts.URL, "test"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(UseLocal)

	served := RunOne(cfg, "VADD", sim.DynNDP, 1)
	if served.Err != nil {
		t.Fatal(served.Err)
	}

	ld := local.Stats.Digest()
	sd := served.Stats.Digest()
	for k, lv := range ld {
		if sv, ok := sd[k]; !ok || sv != lv {
			t.Errorf("digest %s: served %v, local %v", k, sd[k], lv)
		}
	}
	if len(sd) != len(ld) {
		t.Errorf("digest sizes differ: served %d, local %d", len(sd), len(ld))
	}
	if served.TimePS != local.TimePS {
		t.Errorf("TimePS: served %d, local %d", served.TimePS, local.TimePS)
	}
	if served.Energy.Total() != local.Energy.Total() {
		t.Errorf("energy: served %v, local %v", served.Energy.Total(), local.Energy.Total())
	}
	if served.Mode != local.Mode || served.Workload != local.Workload {
		t.Errorf("run identity: served %s/%s, local %s/%s",
			served.Workload, served.Mode, local.Workload, local.Mode)
	}

	// The repeat costs the server a map lookup, and the sweep cannot tell.
	again := RunOne(cfg, "VADD", sim.DynNDP, 1)
	if again.Err != nil {
		t.Fatal(again.Err)
	}
	if again.TimePS != local.TimePS {
		t.Errorf("cached repeat TimePS: %d, want %d", again.TimePS, local.TimePS)
	}
	snap := sched.Snapshot()
	if snap.Executed != 1 || snap.CacheHits != 1 {
		t.Errorf("server counters after repeat: %+v", snap)
	}

	// An unreachable server is a setup error, reported before any run.
	if err := UseServer("http://127.0.0.1:1", "test"); err == nil {
		t.Error("UseServer accepted an unreachable server")
	}
	UseLocal()
}
