// Package vm implements the simulated virtual memory system: a flat
// functional backing store, a 4 KB page table that places pages on memory
// stacks at random (the paper's "unrestricted data placement", §5), and the
// physical address decode down to HMC / vault / bank / DRAM row.
//
// Translation happens only on the GPU (that is the paper's core premise:
// the memory stacks have no MMU). In this model virtual and physical offsets
// coincide; "translation" is the page→stack placement lookup, which is the
// part that matters for timing and traffic.
package vm

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"ndpgpu/internal/config"
	"ndpgpu/internal/isa"
)

// Loc is the physical location of one cache-line-sized block.
type Loc struct {
	HMC   int
	Vault int
	Bank  int
	Row   int64
}

// System is the memory system: functional contents plus placement metadata.
type System struct {
	pageBytes int
	lineBytes int
	numHMCs   int
	vaults    int
	banks     int

	pageShift  uint // pages are a power of two: page-of-addr is a shift, not a divide
	vaultShift uint
	bankShift  uint
	rowShift   uint

	data    []byte
	brk     uint64
	pageHMC []uint8
	rng     *rand.Rand
	seed    int64 // placement seed, kept so Clone can rebuild an rng
}

// heapBase is the first virtual address handed out; keeps address 0 invalid.
const heapBase = 0x1000

// New creates an empty memory system for the given configuration.
func New(cfg config.Config) *System {
	line := cfg.LineBytes()
	s := &System{
		pageBytes:  cfg.Mem.PageBytes,
		lineBytes:  line,
		numHMCs:    cfg.NumHMCs,
		vaults:     cfg.HMC.NumVaults,
		banks:      cfg.HMC.BanksPerVault,
		pageShift:  uint(log2(cfg.Mem.PageBytes)),
		vaultShift: uint(log2(line)),
		rng:        rand.New(rand.NewSource(cfg.Mem.PlacementSeed)),
		seed:       cfg.Mem.PlacementSeed,
		brk:        heapBase,
	}
	s.bankShift = s.vaultShift + uint(log2(s.vaults))
	s.rowShift = s.bankShift + uint(log2(s.banks))
	return s
}

func log2(n int) int {
	k := 0
	for 1<<k < n {
		k++
	}
	if 1<<k != n {
		panic(fmt.Sprintf("vm: %d is not a power of two", n))
	}
	return k
}

// PageBytes returns the page size.
func (s *System) PageBytes() int { return s.pageBytes }

// LineBytes returns the cache-line / memory-access granularity.
func (s *System) LineBytes() int { return s.lineBytes }

// Alloc reserves n bytes and returns the virtual base address, aligned to a
// page boundary so distinct arrays never share a page.
func (s *System) Alloc(n int) uint64 {
	if n <= 0 {
		panic("vm: non-positive allocation")
	}
	base := (s.brk + uint64(s.pageBytes) - 1) &^ (uint64(s.pageBytes) - 1)
	s.brk = base + uint64(n)
	s.ensure(s.brk)
	return base
}

// ensure grows the backing store and page map to cover addresses < limit.
func (s *System) ensure(limit uint64) {
	if uint64(len(s.data)) < limit {
		grown := make([]byte, (limit+uint64(s.pageBytes))&^(uint64(s.pageBytes)-1))
		copy(grown, s.data)
		s.data = grown
	}
	pages := int((limit + uint64(s.pageBytes) - 1) / uint64(s.pageBytes))
	for len(s.pageHMC) < pages {
		s.pageHMC = append(s.pageHMC, uint8(s.rng.Intn(s.numHMCs)))
	}
}

// Size returns the current extent of the allocated address space.
func (s *System) Size() uint64 { return s.brk }

// Snapshot returns a copy of the allocated backing store. Two systems built
// with the same configuration and the same allocation/initialization sequence
// produce directly comparable snapshots, which is how the audit harness
// checks a timing-simulated run bit-for-bit against the reference
// interpreter.
func (s *System) Snapshot() []byte {
	out := make([]byte, s.brk)
	copy(out, s.data[:s.brk])
	return out
}

func (s *System) check(addr uint64, n int) {
	if addr < heapBase || addr+uint64(n) > uint64(len(s.data)) {
		panic(fmt.Sprintf("vm: access [%#x,%#x) outside allocated space [%#x,%#x)",
			addr, addr+uint64(n), heapBase, len(s.data)))
	}
}

// Read32 loads a 4-byte word.
func (s *System) Read32(addr uint64) uint32 {
	s.check(addr, 4)
	return binary.LittleEndian.Uint32(s.data[addr:])
}

// Write32 stores a 4-byte word.
func (s *System) Write32(addr uint64, v uint32) {
	s.check(addr, 4)
	binary.LittleEndian.PutUint32(s.data[addr:], v)
}

// ReadF32 loads a float32.
func (s *System) ReadF32(addr uint64) float32 { return isa.F32(uint64(s.Read32(addr))) }

// WriteF32 stores a float32.
func (s *System) WriteF32(addr uint64, f float32) { s.Write32(addr, uint32(isa.FromF32(f))) }

// HMCOf returns the stack holding the page of addr.
func (s *System) HMCOf(addr uint64) int {
	page := addr >> s.pageShift
	if page >= uint64(len(s.pageHMC)) {
		panic(fmt.Sprintf("vm: address %#x beyond mapped pages", addr))
	}
	return int(s.pageHMC[page])
}

// Decode resolves an address to its full physical location.
func (s *System) Decode(addr uint64) Loc {
	return Loc{
		HMC:   s.HMCOf(addr),
		Vault: int(addr>>s.vaultShift) & (s.vaults - 1),
		Bank:  int(addr>>s.bankShift) & (s.banks - 1),
		Row:   int64(addr >> s.rowShift),
	}
}

// LineAddr returns addr rounded down to its cache line.
func (s *System) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(s.lineBytes) - 1)
}

// PlacePage overrides the random placement of the page containing addr;
// used by tests and by experiments that need controlled placement.
func (s *System) PlacePage(addr uint64, hmc int) {
	if hmc < 0 || hmc >= s.numHMCs {
		panic(fmt.Sprintf("vm: invalid HMC %d", hmc))
	}
	s.ensure(addr + 1)
	s.pageHMC[addr/uint64(s.pageBytes)] = uint8(hmc)
}

// NumHMCs returns the number of stacks.
func (s *System) NumHMCs() int { return s.numHMCs }

// NumPages returns the number of pages currently mapped.
func (s *System) NumPages() int { return len(s.pageHMC) }

// Clone returns an independent deep copy of the system: same contents, same
// placement, same allocation state. The clone's placement PRNG restarts from
// the original seed — identical to a fresh System's stream, not a
// continuation of the original's — which only matters if the clone allocates
// new pages. Backends use clones to run functional pre-passes (e.g. a traced
// interpreter run that profiles page access patterns) without perturbing the
// memory image the timing simulation will execute over.
func (s *System) Clone() *System {
	c := *s
	c.data = append([]byte(nil), s.data...)
	c.pageHMC = append([]uint8(nil), s.pageHMC...)
	c.rng = rand.New(rand.NewSource(s.seed))
	return &c
}
