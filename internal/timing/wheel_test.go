package timing

import (
	"math/rand"
	"strings"
	"testing"
)

func TestWheelBasics(t *testing.T) {
	w := NewWheel()
	if w.Min() != Never {
		t.Fatalf("empty wheel Min = %d, want Never", w.Min())
	}
	a := w.Add(100)
	b := w.Add(50)
	if w.Len() != 2 || w.Min() != 50 {
		t.Fatalf("Min = %d after adds, want 50", w.Min())
	}
	// Re-arming the minimum later must trigger the lazy rescan.
	w.Arm(b, 200)
	if w.Min() != 100 {
		t.Fatalf("Min = %d after arming the minimum later, want 100", w.Min())
	}
	// Arming earlier updates the cached minimum in place.
	w.Arm(a, 30)
	if w.Min() != 30 {
		t.Fatalf("Min = %d after arming earlier, want 30", w.Min())
	}
	// Wake is monotone: a later time must not move the slot.
	w.Wake(a, 500)
	if w.At(a) != 30 {
		t.Fatalf("Wake moved slot later: At = %d, want 30", w.At(a))
	}
	w.Wake(b, 40)
	if w.At(b) != 40 || w.Min() != 30 {
		t.Fatalf("Wake earlier: At = %d Min = %d, want 40/30", w.At(b), w.Min())
	}
}

func TestWheelPastWakeStaysDue(t *testing.T) {
	// A wake time in the past is legal — the slot is simply due at the next
	// edge. NextWorkAt hints of busy components routinely return times at or
	// before now, and the engine arms them verbatim.
	w := NewWheel()
	s := w.Add(1000)
	w.Arm(s, -5)
	if w.At(s) != -5 || w.Min() != -5 {
		t.Fatalf("past arm: At = %d Min = %d, want -5/-5", w.At(s), w.Min())
	}
	w.Wake(s, 100) // later than the past wake: must not move it
	if w.At(s) != -5 {
		t.Fatalf("Wake overrode an earlier past wake: At = %d", w.At(s))
	}
}

func TestWheelNeverThenRearm(t *testing.T) {
	w := NewWheel()
	s := w.Add(0)
	w.Arm(s, Never)
	if w.Min() != Never {
		t.Fatalf("Min = %d after parking at Never, want Never", w.Min())
	}
	w.Wake(s, 70)
	if w.At(s) != 70 || w.Min() != 70 {
		t.Fatalf("re-arm from Never: At = %d Min = %d, want 70/70", w.At(s), w.Min())
	}
}

// probeTicker is a scheduled test component: Tick records fired edges,
// SkipIdle counts credited elisions, and the hint function is NextWorkAt.
type probeTicker struct {
	ticks   []PS
	credits int64
	hint    func(now PS) PS
	onTick  func(now PS)
}

func (p *probeTicker) Tick(now PS) {
	p.ticks = append(p.ticks, now)
	if p.onTick != nil {
		p.onTick(now)
	}
}
func (p *probeTicker) NextWorkAt(now PS) PS { return p.hint(now) }
func (p *probeTicker) SkipIdle(n int64)     { p.credits += n }

// TestScheduledPastHintTicksEveryEdge: a hint in the past means "busy" and
// must never park the component.
func TestScheduledPastHintTicksEveryEdge(t *testing.T) {
	e := NewEngine()
	d := e.AddDomain("d", 100)
	p := &probeTicker{hint: func(now PS) PS { return now - 1 }}
	d.AttachScheduled(p)
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if len(p.ticks) != 10 {
		t.Fatalf("ticked %d times over 10 edges, want 10", len(p.ticks))
	}
	if p.credits != 0 {
		t.Fatalf("credited %d idle edges to a busy component", p.credits)
	}
}

// timerTicker is a polled component that fires at fixed times and invokes a
// callback at each — the "external event source" of the wake tests.
type timerTicker struct {
	times  []PS
	onFire func(now PS)
}

func (tt *timerTicker) Tick(now PS) {
	if len(tt.times) > 0 && tt.times[0] <= now {
		tt.times = tt.times[1:]
		if tt.onFire != nil {
			tt.onFire(now)
		}
	}
}
func (tt *timerTicker) NextWorkAt(now PS) PS {
	if len(tt.times) == 0 {
		return Never
	}
	return tt.times[0]
}

// TestScheduledNeverThenExternalWake: a component parked at Never is re-armed
// by an external event and ticks again; elided edges are credited exactly.
func TestScheduledNeverThenExternalWake(t *testing.T) {
	// Two attach orders: source before sleeper delivers the wake on the same
	// edge (the sleeper is visited later in the fire loop); source after
	// sleeper delivers it on the following edge — exactly the attach-order
	// semantics dense ticking has.
	for _, srcFirst := range []bool{true, false} {
		e := NewEngine()
		d := e.AddDomain("d", 100)
		sleeper := &probeTicker{hint: func(now PS) PS { return Never }}
		src := &timerTicker{times: []PS{500}}
		var slot int
		if srcFirst {
			d.Attach(src)
			slot = d.AttachScheduled(sleeper)
		} else {
			slot = d.AttachScheduled(sleeper)
			d.Attach(src)
		}
		src.onFire = func(now PS) { d.Wake(slot, now) }
		for e.Now() < 1000 {
			e.Step()
		}
		want := []PS{100, 500}
		if !srcFirst {
			want = []PS{100, 600}
		}
		if len(sleeper.ticks) != 2 || sleeper.ticks[0] != want[0] || sleeper.ticks[1] != want[1] {
			t.Fatalf("srcFirst=%v: sleeper ticks = %v, want %v", srcFirst, sleeper.ticks, want)
		}
		if got := int64(len(sleeper.ticks)) + sleeper.credits; got != d.Cycles {
			t.Fatalf("srcFirst=%v: ticks+credits = %d, domain cycles = %d", srcFirst, got, d.Cycles)
		}
	}
}

// TestWakeCheckCatchesMissedRearm: with the verification mode on, a parked
// component that reports due work (an external event mutated its state
// without a Wake) panics at the first edge where dense ticking would have
// diverged.
func TestWakeCheckCatchesMissedRearm(t *testing.T) {
	e := NewEngine()
	e.SetWakeCheck(true)
	d := e.AddDomain("d", 100)
	hasWork := false
	sleeper := &probeTicker{hint: func(now PS) PS {
		if hasWork {
			return now
		}
		return Never
	}}
	d.AttachScheduled(sleeper)
	// The buggy event source: deposits work at t=500 without waking the slot.
	src := &timerTicker{times: []PS{500, 900}}
	src.onFire = func(now PS) { hasWork = true }
	d.Attach(src)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("missed re-arm did not panic under SetWakeCheck")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "parked until") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	for e.Now() < 2000 {
		e.Step()
	}
}

// TestScheduledHintConservatismFuzz: any conservative hint sequence — wake
// times jittered arbitrarily earlier than the true next work, down to "busy
// now" — must leave the observable work schedule bit-identical to dense
// ticking, with elided edges credited exactly.
func TestScheduledHintConservatismFuzz(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		// One random work schedule per seed, shared by all legs.
		gen := rand.New(rand.NewSource(seed))
		var work []PS
		at := PS(0)
		for len(work) < 40 {
			at += PS(1+gen.Intn(12)) * 100
			work = append(work, at)
		}
		limit := work[len(work)-1] + 5000

		// run returns the edge at which each work item was consumed.
		run := func(dense bool, jitterSeed int64) []PS {
			jit := rand.New(rand.NewSource(jitterSeed))
			e := NewEngine()
			e.SetWakeCheck(true)
			if dense {
				e.SetIdleSkip(false)
			}
			d := e.AddDomain("d", 100)
			idx := 0
			var done []PS
			p := &probeTicker{}
			p.onTick = func(now PS) {
				for idx < len(work) && work[idx] <= now {
					done = append(done, now)
					idx++
				}
			}
			p.hint = func(now PS) PS {
				if idx >= len(work) {
					return Never
				}
				next := work[idx]
				if next <= now {
					return now
				}
				// Conservative jitter: report earlier, never later.
				next -= PS(jit.Intn(4)) * 100
				if next <= now {
					return now
				}
				return next
			}
			d.AttachScheduled(p)
			for idx < len(work) && e.Now() < limit {
				e.Step()
			}
			if !dense {
				if got := int64(len(p.ticks)) + p.credits; got != d.Cycles {
					t.Fatalf("seed %d: ticks+credits = %d, domain cycles = %d", seed, got, d.Cycles)
				}
			}
			return done
		}

		ref := run(true, 0)
		for leg := int64(1); leg <= 3; leg++ {
			got := run(false, seed*31+leg)
			if len(got) != len(ref) {
				t.Fatalf("seed %d leg %d: %d work items consumed, want %d", seed, leg, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("seed %d leg %d: work %d consumed at %d, dense consumed at %d",
						seed, leg, i, got[i], ref[i])
				}
			}
		}
	}
}
