package hmc

import (
	"testing"

	"ndpgpu/internal/config"
	"ndpgpu/internal/core"
	"ndpgpu/internal/noc"
	"ndpgpu/internal/stats"
	"ndpgpu/internal/timing"
	"ndpgpu/internal/vm"
)

// nsuSink records messages the logic layer routes to the NSU.
type nsuSink struct{ msgs []any }

func (s *nsuSink) Deliver(msg any, now timing.PS) { s.msgs = append(s.msgs, msg) }

func setup(t *testing.T) (*HMC, *nsuSink, *noc.Fabric, *vm.System, uint64) {
	t.Helper()
	cfg := config.Default()
	mem := vm.New(cfg)
	base := mem.Alloc(1 << 16)
	st := stats.New()
	fab := noc.NewFabric(cfg, st)
	// Find a line homed on stack 0.
	var line uint64
	for off := uint64(0); ; off += 4096 {
		if mem.HMCOf(base+off) == 0 {
			line = mem.LineAddr(base + off)
			break
		}
	}
	h := New(0, cfg, mem, fab, st)
	sink := &nsuSink{}
	h.SetNSU(sink)
	return h, sink, fab, mem, line
}

func spin(h *HMC, upto timing.PS) {
	for now := timing.PS(0); now <= upto; now += 1500 {
		h.Tick(now)
	}
}

func TestBaselineReadProducesResponse(t *testing.T) {
	h, _, fab, _, line := setup(t)
	fab.SendGPUToHMC(0, 0, 16, &core.ReadReq{LineAddr: line})
	spin(h, 1_000_000)
	msg, ok := fab.GPUInbox().Pop(1 << 40)
	if !ok {
		t.Fatal("no read response")
	}
	resp, ok := msg.(*core.ReadResp)
	if !ok || resp.LineAddr != line {
		t.Fatalf("unexpected response %#v", msg)
	}
	if h.Busy() {
		t.Fatal("stack should quiesce")
	}
}

func TestReadCombiningMergesSameLine(t *testing.T) {
	h, _, fab, _, line := setup(t)
	for i := 0; i < 10; i++ {
		fab.SendGPUToHMC(0, 0, 16, &core.ReadReq{LineAddr: line})
	}
	spin(h, 1_000_000)
	n := 0
	for {
		if _, ok := fab.GPUInbox().Pop(1 << 40); !ok {
			break
		}
		n++
	}
	if n != 10 {
		t.Fatalf("responses = %d, want 10", n)
	}
	if got := h.VaultStats().Reads; got >= 10 {
		t.Fatalf("DRAM reads = %d; same-line reads should combine", got)
	}
}

func TestRDFReadForwardsToLocalNSU(t *testing.T) {
	h, sink, fab, mem, line := setup(t)
	mem.Write32(line+8, 0xabcd)
	rdf := &core.RDFPacket{ID: core.OffloadID{SM: 1, Warp: 1}, Seq: 0, Target: 0, TotalPkts: 1}
	rdf.Access.LineAddr = line
	rdf.Access.Mask = 1 << 2
	rdf.Access.Offsets[2] = 2
	fab.SendGPUToHMC(0, 0, rdf.Size(), rdf)
	spin(h, 1_000_000)
	if len(sink.msgs) != 1 {
		t.Fatalf("NSU received %d messages, want 1", len(sink.msgs))
	}
	resp, ok := sink.msgs[0].(*core.RDFResp)
	if !ok || resp.Data[2] != 0xabcd {
		t.Fatalf("bad RDF response: %#v", sink.msgs[0])
	}
}

func TestRDFReadForwardsToRemoteNSU(t *testing.T) {
	h, sink, fab, _, line := setup(t)
	rdf := &core.RDFPacket{ID: core.OffloadID{SM: 1, Warp: 1}, Seq: 0, Target: 5, TotalPkts: 1}
	rdf.Access.LineAddr = line
	rdf.Access.Mask = 1
	fab.SendGPUToHMC(0, 0, rdf.Size(), rdf)
	spin(h, 1_000_000)
	if len(sink.msgs) != 0 {
		t.Fatal("response for a remote target must not go to the local NSU")
	}
	if _, ok := fab.HMCInbox(5).Pop(1 << 40); !ok {
		t.Fatal("response did not reach the target stack over the memory network")
	}
}

func TestNSUWriteAcksAndInvalidates(t *testing.T) {
	h, sink, fab, mem, line := setup(t)
	wp := &core.WritePacket{ID: core.OffloadID{SM: 2, Warp: 3}, Seq: 0, Source: 0}
	wp.Access.LineAddr = line
	wp.Access.Mask = 1
	wp.Data[0] = 42
	h.SubmitNSUWrite(wp, 0)
	spin(h, 1_000_000)
	// Local source: ack delivered directly to the NSU.
	if len(sink.msgs) != 1 {
		t.Fatalf("NSU messages = %d, want 1 write ack", len(sink.msgs))
	}
	if _, ok := sink.msgs[0].(*core.WriteAck); !ok {
		t.Fatalf("expected write ack, got %#v", sink.msgs[0])
	}
	// Invalidate toward the GPU (§4.2).
	msg, ok := fab.GPUInbox().Pop(1 << 40)
	if !ok {
		t.Fatal("no invalidation sent to the GPU")
	}
	inv, ok := msg.(*core.InvalPacket)
	if !ok || inv.LineAddr != line || inv.HomeHMC != 0 {
		t.Fatalf("bad invalidation %#v", msg)
	}
	if h.VaultStats().Writes != 1 {
		t.Fatalf("DRAM writes = %d", h.VaultStats().Writes)
	}
	_ = mem
}

func TestRemoteWriteAckOverMemNet(t *testing.T) {
	h, sink, fab, _, line := setup(t)
	wp := &core.WritePacket{ID: core.OffloadID{SM: 2, Warp: 3}, Seq: 0, Source: 6}
	wp.Access.LineAddr = line
	wp.Access.Mask = 1
	fab.SendHMCToHMC(0, 6, 0, wp.Size(), wp)
	spin(h, 1_000_000)
	if len(sink.msgs) != 0 {
		t.Fatal("remote writer's ack wrongly delivered locally")
	}
	if _, ok := fab.HMCInbox(6).Pop(1 << 40); !ok {
		t.Fatal("write ack did not return to the source stack")
	}
}

func TestBaselineWriteNoResponse(t *testing.T) {
	h, _, fab, _, line := setup(t)
	wr := &core.WriteReq{}
	wr.Access.LineAddr = line
	wr.Access.Mask = 0xF
	fab.SendGPUToHMC(0, 0, wr.Size(), wr)
	spin(h, 1_000_000)
	if fab.GPUInbox().Len() != 0 {
		t.Fatal("baseline writes are fire-and-forget under relaxed consistency")
	}
	if h.VaultStats().Writes != 1 {
		t.Fatalf("writes = %d", h.VaultStats().Writes)
	}
}

func TestVaultOverflowRetries(t *testing.T) {
	h, _, fab, mem, _ := setup(t)
	// Flood the stack far past the 64-entry vault queues with distinct
	// lines homed on stack 0.
	extra := mem.Alloc(1 << 21)
	sent := 0
	for off := uint64(0); off < 1<<21 && sent < 200; off += 4096 {
		mem.PlacePage(extra+off, 0)
		fab.SendGPUToHMC(0, 0, 16, &core.ReadReq{LineAddr: mem.LineAddr(extra + off)})
		sent++
	}
	spin(h, 20_000_000)
	got := 0
	for {
		if _, ok := fab.GPUInbox().Pop(1 << 41); !ok {
			break
		}
		got++
	}
	if got != sent {
		t.Fatalf("responses = %d, want %d (overflow queue must retry)", got, sent)
	}
}
