package timing

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestPoolRunsAllItems checks completeness under contention: every index is
// executed exactly once, across many batch sizes.
func TestPoolRunsAllItems(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{0, 1, 2, 3, 7, 16, 100} {
		hits := make([]int32, n)
		p.Run(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: item %d ran %d times, want 1", n, i, h)
			}
		}
	}
}

// TestPoolSerialFallback checks that a nil pool and a single-worker pool run
// items inline, in order, with no goroutines involved.
func TestPoolSerialFallback(t *testing.T) {
	for _, p := range []*Pool{nil, NewPool(1)} {
		var order []int
		p.Run(5, func(i int) { order = append(order, i) })
		for i, v := range order {
			if v != i {
				t.Fatalf("serial fallback ran out of order: %v", order)
			}
		}
		if len(order) != 5 {
			t.Fatalf("serial fallback ran %d items, want 5", len(order))
		}
	}
}

// TestPoolClaimsInOrder checks the prefix property the Sequencer relies on:
// the set of started items is always a prefix of 0..n-1. Each item records
// the highest index started before it; if item i starts while some j < i has
// not started, the claim counter would have had to skip j — impossible with
// a shared atomic counter, but the test guards the invariant against future
// rewrites (e.g. per-worker deques).
func TestPoolClaimsInOrder(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	const n = 200
	var started atomic.Int64
	p.Run(n, func(i int) {
		// The claim of index i happens before f(i); the counter value is
		// the number of claims made, so every j < i was claimed already.
		s := started.Add(1)
		if s < int64(i+1) {
			t.Errorf("item %d started with only %d claims made", i, s)
		}
	})
}

// TestSequencerOrders checks that Do(k) observes every lower shard finished,
// and that sequenced bodies are mutually serialized.
func TestSequencerOrders(t *testing.T) {
	const n = 16
	p := NewPool(8)
	defer p.Close()
	s := NewSequencer(n)
	for trial := 0; trial < 50; trial++ {
		s.Begin(n)
		finished := make([]atomic.Bool, n)
		var inBody atomic.Int32
		var order []int
		p.Run(n, func(k int) {
			s.Do(k, func() {
				if c := inBody.Add(1); c != 1 {
					t.Errorf("sequenced bodies overlapped (%d concurrent)", c)
				}
				for j := 0; j < k; j++ {
					if !finished[j].Load() {
						t.Errorf("Do(%d) ran before shard %d finished", k, j)
					}
				}
				order = append(order, k)
				inBody.Add(-1)
			})
			finished[k].Store(true)
			s.Finish(k)
		})
		for i, v := range order {
			if v != i {
				t.Fatalf("trial %d: sequenced ops ran out of order: %v", trial, order)
			}
		}
	}
}

// TestPreStepHooks checks that engine pre-step hooks fire once per step with
// the step's timestamp, before any domain ticks, in both skip and dense mode.
func TestPreStepHooks(t *testing.T) {
	for _, skip := range []bool{true, false} {
		e := NewEngine()
		e.SetIdleSkip(skip)
		d := e.AddDomain("d", 10)
		var hookTimes, tickTimes []PS
		e.AddPreStep(func(now PS) { hookTimes = append(hookTimes, now) })
		d.Attach(TickFunc(func(now PS) { tickTimes = append(tickTimes, now) }))
		for i := 0; i < 3; i++ {
			e.Step()
		}
		if len(hookTimes) != 3 || len(tickTimes) != 3 {
			t.Fatalf("skip=%v: %d hook calls, %d ticks, want 3 each", skip, len(hookTimes), len(tickTimes))
		}
		for i := range hookTimes {
			if hookTimes[i] != tickTimes[i] {
				t.Fatalf("skip=%v: hook at t=%d, tick at t=%d", skip, hookTimes[i], tickTimes[i])
			}
		}
	}
}

// countShard is a Shard that increments a private counter during Tick and
// publishes it to a shared log at Commit.
type countShard struct {
	id      int
	ticks   int
	pending []int
	log     *[]int
	mu      *sync.Mutex // guards nothing in commit (serial); used only to appease vet in compute
	wake    PS
}

func (c *countShard) Tick(now PS) {
	c.ticks++
	c.pending = append(c.pending, c.id)
}

func (c *countShard) Commit(now PS) {
	*c.log = append(*c.log, c.pending...)
	c.pending = c.pending[:0]
}

func (c *countShard) NextWorkAt(now PS) PS {
	if c.wake == 0 {
		return now
	}
	return c.wake
}

// TestShardedCommitOrder checks that Sharded ticks all shards and commits
// their outboxes in index order regardless of compute interleaving.
func TestShardedCommitOrder(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var log []int
	var mu sync.Mutex
	shards := make([]Shard, 8)
	css := make([]*countShard, 8)
	for i := range shards {
		cs := &countShard{id: i, log: &log, mu: &mu}
		css[i] = cs
		shards[i] = cs
	}
	sh := NewSharded(p, shards...)
	for tick := 0; tick < 20; tick++ {
		sh.Tick(PS(tick))
	}
	if len(log) != 8*20 {
		t.Fatalf("log has %d entries, want %d", len(log), 8*20)
	}
	for i, v := range log {
		if v != i%8 {
			t.Fatalf("commit order broken at %d: got shard %d, want %d", i, v, i%8)
		}
	}
	for i, cs := range css {
		if cs.ticks != 20 {
			t.Fatalf("shard %d ticked %d times, want 20", i, cs.ticks)
		}
	}
}

// TestShardedIdleHint checks that the group's hint is the min over shards.
func TestShardedIdleHint(t *testing.T) {
	var log []int
	a := &countShard{id: 0, log: &log, wake: 100}
	b := &countShard{id: 1, log: &log, wake: 40}
	sh := NewSharded(nil, a, b)
	if got := sh.NextWorkAt(10); got != 40 {
		t.Fatalf("NextWorkAt = %d, want 40 (min over shards)", got)
	}
}

// TestPoolStress hammers the spin-then-park pool with adversarial worker
// counts (including more workers than CPUs and more workers than items) and
// back-to-back phases of varying size, in both the park-immediately (spin=0)
// and spin-first configurations. Every index of every phase must run exactly
// once — this is the claim-ordering/lost-wakeup stress the -race leg exists
// for.
func TestPoolStress(t *testing.T) {
	sizes := []int{1, 2, 3, 8, 17, 64, 72, 200}
	for _, workers := range []int{2, 3, 8, 16} {
		for _, spin := range []int{0, 64} {
			p := NewPool(workers)
			p.spin = spin
			for round := 0; round < 30; round++ {
				n := sizes[round%len(sizes)]
				hits := make([]int32, n)
				p.Run(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d spin=%d round=%d: item %d ran %d times, want 1",
							workers, spin, round, i, h)
					}
				}
			}
			p.Close()
		}
	}
}

// TestRunFusedOrdering checks the RunFused contract: every index runs exactly
// once, and indices within each supershard's contiguous range execute in
// ascending order (the property that keeps commit replay and the Sequencer's
// deadlock-freedom argument intact).
func TestRunFusedOrdering(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	const n = 72
	for _, groups := range []int{1, 2, 3, 4, 7, 36, 72, 100} {
		var mu sync.Mutex
		seq := make([]int, 0, n) // global execution order
		hits := make([]int32, n)
		p.RunFused(n, groups, func(i int) {
			atomic.AddInt32(&hits[i], 1)
			mu.Lock()
			seq = append(seq, i)
			mu.Unlock()
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("groups=%d: item %d ran %d times, want 1", groups, i, h)
			}
		}
		// Within each group's range [g*n/groups, (g+1)*n/groups) the global
		// order must be ascending, because one goroutine runs the whole group.
		g := groups
		if g > n {
			g = n
		}
		last := make([]int, g)
		for i := range last {
			last[i] = -1
		}
		for _, i := range seq {
			grp := i * g / n
			// Exact group lookup: find the range containing i.
			for grp > 0 && grp*n/g > i {
				grp--
			}
			for (grp+1)*n/g <= i {
				grp++
			}
			if last[grp] >= i {
				t.Fatalf("groups=%d: group %d ran index %d after %d", groups, grp, i, last[grp])
			}
			last[grp] = i
		}
	}
}

// TestSequencerFused fuzzes the Sequencer under fused dispatch: 72 shards, a
// seeded random subset of them submitting sequenced operations each phase,
// across every interesting fusion width. Operations must still execute in
// strict shard-index order and each must observe every lower shard finished.
func TestSequencerFused(t *testing.T) {
	const n = 72
	p := NewPool(8)
	defer p.Close()
	s := NewSequencer(n)
	rng := rand.New(rand.NewSource(42))
	for _, groups := range []int{2, 4, 9, 24, 72} {
		for trial := 0; trial < 20; trial++ {
			// Random subset of shards run a sequenced op this phase —
			// including phases where none or all do.
			doOp := make([]bool, n)
			for k := range doOp {
				doOp[k] = rng.Intn(3) == 0
			}
			s.Begin(n)
			finished := make([]atomic.Bool, n)
			var order []int
			p.RunFused(n, groups, func(k int) {
				if doOp[k] {
					s.Do(k, func() {
						for j := 0; j < k; j++ {
							if !finished[j].Load() {
								t.Errorf("groups=%d: Do(%d) ran before shard %d finished", groups, k, j)
							}
						}
						order = append(order, k)
					})
				}
				finished[k].Store(true)
				s.Finish(k)
			})
			for i := 1; i < len(order); i++ {
				if order[i] <= order[i-1] {
					t.Fatalf("groups=%d trial=%d: sequenced ops out of order: %v", groups, trial, order)
				}
			}
		}
	}
}

// pendShard is a Shard with a controllable idle hint and pending-commit
// count, for driving the quiescence proof directly.
type pendShard struct {
	wake    PS
	pend    int
	ticks   int
	commits int
}

func (s *pendShard) Tick(now PS)          { s.ticks++ }
func (s *pendShard) Commit(now PS)        { s.commits++; s.pend = 0 }
func (s *pendShard) NextWorkAt(now PS) PS { return s.wake }
func (s *pendShard) PendingCommit() int   { return s.pend }

// TestQuiescenceNeverElidesPendingSend is the regression the quiescence proof
// must never lose: a shard whose idle hint claims it is asleep but which
// still holds a deferred cross-shard send counts as active, so the phase
// cannot be certified quiescent while a send is waiting to replay.
func TestQuiescenceNeverElidesPendingSend(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	busy := &pendShard{wake: 0}                // hint says: work now
	sleeper := &pendShard{wake: 1000, pend: 3} // hint says idle, but outbox non-empty
	idle := &pendShard{wake: 1000}
	sh := NewSharded(p, busy, sleeper, idle)
	sh.SetFusion(3)
	sh.SetQuiescent(true)

	if got := sh.activeShards(5); got != 2 {
		t.Fatalf("activeShards = %d, want 2 (busy + pending-send sleeper)", got)
	}
	sh.Tick(5)
	if in, pooled := sh.Phases(); in != 0 || pooled != 1 {
		t.Fatalf("phase with pending send ran inline=%d pooled=%d, want 0/1 (no elision)", in, pooled)
	}
	if sleeper.commits != 1 {
		t.Fatalf("pending-send shard committed %d times, want 1", sleeper.commits)
	}

	// Commit drained the outbox; with only one busy shard left the next
	// phase is provably quiescent and runs inline.
	sh.Tick(6)
	if in, pooled := sh.Phases(); in != 1 || pooled != 1 {
		t.Fatalf("quiescent phase ran inline=%d pooled=%d, want 1/1", in, pooled)
	}
	// Inline phases still tick and commit every shard.
	for i, s := range []*pendShard{busy, sleeper, idle} {
		if s.ticks != 2 || s.commits != 2 {
			t.Fatalf("shard %d: ticks=%d commits=%d, want 2/2", i, s.ticks, s.commits)
		}
	}

	// With batching off the same phase dispatches to the pool.
	sh.SetQuiescent(false)
	sh.Tick(7)
	if in, pooled := sh.Phases(); in != 1 || pooled != 2 {
		t.Fatalf("nobatch phase ran inline=%d pooled=%d, want 1/2", in, pooled)
	}
}

// TestShardedFusedCommitOrder re-proves the commit-order invariant of
// TestShardedCommitOrder at every fusion width, with quiescence batching on
// (countShard has no idle hint discipline beyond wake, so phases stay
// active).
func TestShardedFusedCommitOrder(t *testing.T) {
	for _, width := range []int{1, 2, 3, 8} {
		p := NewPool(4)
		var log []int
		shards := make([]Shard, 8)
		for i := range shards {
			shards[i] = &countShard{id: i, log: &log}
		}
		sh := NewSharded(p, shards...)
		sh.SetFusion(width)
		sh.SetQuiescent(true)
		for tick := 0; tick < 20; tick++ {
			sh.Tick(PS(tick))
		}
		if len(log) != 8*20 {
			t.Fatalf("width=%d: log has %d entries, want %d", width, len(log), 8*20)
		}
		for i, v := range log {
			if v != i%8 {
				t.Fatalf("width=%d: commit order broken at %d: got shard %d, want %d", width, i, v, i%8)
			}
		}
		p.Close()
	}
}

// TestPoolCloseIdempotent checks Close is safe on never-started, started, and
// already-closed pools.
func TestPoolCloseIdempotent(t *testing.T) {
	var nilPool *Pool
	nilPool.Close() // must not panic
	p := NewPool(4)
	p.Close() // never started
	p2 := NewPool(4)
	p2.Run(8, func(int) {})
	p2.Close()
	p2.Close() // double close
}
