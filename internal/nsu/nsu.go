// Package nsu implements the Near-data processing SIMD Unit (§4.5): a
// simple in-order SIMT core on the logic layer of each memory stack. It has
// no MMU, no TLB, and no data cache — loads pop the read-data buffer filled
// by RDF responses, stores pop the write-address buffer filled by WTA
// packets, and all addresses it touches are physical, provided by the GPU.
package nsu

import (
	"fmt"
	"math/bits"

	"ndpgpu/internal/analyzer"
	"ndpgpu/internal/config"
	"ndpgpu/internal/core"
	"ndpgpu/internal/fault"
	"ndpgpu/internal/isa"
	"ndpgpu/internal/noc"
	"ndpgpu/internal/stats"
	"ndpgpu/internal/timing"
	"ndpgpu/internal/vm"
)

// bufKey identifies one read-data or write-address buffer entry.
type bufKey struct {
	id  core.OffloadID
	seq int
}

// rdEntry accumulates RDF responses for one load instruction.
type rdEntry struct {
	mask uint32
	data [core.WarpWidth]uint32
	pkts int
}

// wtEntry accumulates WTA packets for one store instruction.
type wtEntry struct {
	accesses []core.LineAccess
	total    int
}

// instRec tracks the latest offload instance seen for one (SM, warp) pair
// under fault injection: which credits previous incarnations already
// returned, and the saved acknowledgment for duplicate-command replay.
// Retransmitted commands, data packets, and write acks are reconciled
// against it so each buffer credit is returned exactly once per instance.
type instRec struct {
	tag      core.ProtoTag // instance (and latest attempt) being tracked
	numLD    int
	numST    int
	retLD    int // read-data credits returned: seqs [0, retLD)
	retST    int // write-address credits returned: seqs [0, retST)
	cmdRet   bool
	done     bool
	aborted  bool
	savedAck *core.AckPacket
}

// nsuWarp is one warp slot.
type nsuWarp struct {
	active   bool
	id       core.OffloadID
	block    *analyzer.Block
	mask     uint32
	pc       int
	seqLD    int
	seqST    int
	pending  int // unacknowledged DRAM writes
	readyAt  timing.PS
	tag      core.ProtoTag // the spawning command's instance/attempt tag
	deadline timing.PS     // fault mode: give up on the warp past this time

	// stBuf holds the block's stores under fault injection. The fault-free
	// NSU streams each store to memory as it executes; the resilient
	// protocol instead buffers them here and applies the whole set
	// atomically at OFLD.END (commit), so a retried or fallen-back attempt
	// re-executes against unmutated memory — without this, a partially
	// written in-place block (read-modify-write on the same lines) could
	// never be replayed correctly.
	stBuf []*core.WritePacket
	regs  map[isa.Reg]*[core.WarpWidth]uint64
	// written tracks which lanes each register was produced for, so the
	// acknowledgment ships only meaningful values.
	written map[isa.Reg]uint32
}

func (w *nsuWarp) reg(r isa.Reg) *[core.WarpWidth]uint64 {
	v, ok := w.regs[r]
	if !ok {
		v = new([core.WarpWidth]uint64)
		w.regs[r] = v
	}
	return v
}

// CreditReturner receives buffer credits as NSU entries drain (§4.3); the
// GPU's buffer manager implements it.
type CreditReturner interface {
	Return(target int, kind core.BufferKind, n int)
}

// WriteSubmitter accepts a write packet destined for a local vault; the
// owning HMC implements it.
type WriteSubmitter interface {
	SubmitNSUWrite(p *core.WritePacket, now timing.PS)
}

// NSU is one near-data SIMD unit.
type NSU struct {
	ID  int
	cfg config.Config
	mem *vm.System
	fab *noc.Fabric
	out noc.Sender // defaults to fab; a shard outbox in parallel mode
	st  *stats.Stats

	credits CreditReturner
	local   WriteSubmitter

	blocks map[int]*analyzer.Block
	warps  []nsuWarp
	cmdQ   []*core.CmdPacket
	rd     map[bufKey]*rdEntry
	wt     map[bufKey]*wtEntry

	period     timing.PS
	icodeSeen  map[int]bool // block IDs whose code this NSU has executed
	icodeBytes int64

	// Fault-injection state (all nil/zero on the fault-free path).
	flt         *fault.Injector
	abortPS     timing.PS // warp give-up window, > the GPU's full retry window
	inst        map[core.OffloadID]*instRec
	deadCleaned bool // permanent failure observed and state torn down

	// Idle mirror cache. idleValid holds between evaluations until a Deliver
	// or a full Tick can change the outcome; while it certifies idleness past
	// the current edge, Tick applies the snapshot below instead of rescanning
	// the warps.
	idleValid bool
	idleWake  timing.PS

	// onWork, when set, is called from Deliver with the delivery time: the
	// NSU domain is wake-scheduled and this NSU's slot must be re-armed no
	// later than the edge that can first observe the packet.
	onWork func(at timing.PS)

	// Snapshot of the per-cycle statistics an empty tick would record,
	// captured by the last evaluation that certified idleness; SkipIdle
	// replays it for each retired cycle. Only idle evaluations overwrite it,
	// so the snapshot always describes the stretch being skipped.
	skipOcc int64
	skipRD  int64
	skipWA  int64
}

// New builds an NSU for stack id. The program's blocks provide the NSU code
// image (appended to the workload executable per §3.2).
func New(id int, cfg config.Config, prog *analyzer.Program, mem *vm.System,
	fab *noc.Fabric, st *stats.Stats, credits CreditReturner) *NSU {
	n := &NSU{
		ID:        id,
		cfg:       cfg,
		mem:       mem,
		fab:       fab,
		out:       fab,
		st:        st,
		credits:   credits,
		blocks:    make(map[int]*analyzer.Block),
		warps:     make([]nsuWarp, cfg.NSU.NumWarps),
		rd:        make(map[bufKey]*rdEntry),
		wt:        make(map[bufKey]*wtEntry),
		period:    timing.PeriodFromMHz(cfg.NSU.ClockMHz),
		icodeSeen: make(map[int]bool),
	}
	for _, b := range prog.Blocks {
		n.blocks[b.ID] = b
	}
	return n
}

// SetLocalWriter wires the owning HMC's vault path.
func (n *NSU) SetLocalWriter(w WriteSubmitter) { n.local = w }

// SetSender redirects outgoing fabric traffic (parallel mode: the stack
// shard's outbox, replayed at the commit barrier).
func (n *NSU) SetSender(s noc.Sender) { n.out = s }

// SetCredits replaces the credit-return sink (parallel mode: the shard
// outbox, which replays the returns into the GPU's buffer manager at the
// commit barrier, in the order serial execution would have made them).
func (n *NSU) SetCredits(c CreditReturner) { n.credits = c }

// SetStats swaps in a shard-private statistics bundle (parallel mode; folded
// into the run's bundle at finalization).
func (n *NSU) SetStats(st *stats.Stats) { n.st = st }

// SetFault attaches the fault injector. abortPS is the window after which a
// spawned warp that cannot finish (its data packets were lost and the GPU
// abandoned the block) is killed; it must exceed the GPU's full retry window
// so an abort implies the GPU has already fallen back and quarantined this
// stack.
func (n *NSU) SetFault(inj *fault.Injector, abortPS timing.PS) {
	n.flt = inj
	n.abortPS = abortPS
	n.inst = make(map[core.OffloadID]*instRec)
}

// Failed reports whether this NSU is permanently dead as of the injector's
// last applied state (used by the drain check, which runs after the
// injector's schedule edge has fired).
func (n *NSU) Failed() bool {
	return n.flt != nil && (n.deadCleaned || n.flt.NSUFailedApplied(n.ID))
}

// SetWakeHook installs the Deliver-time re-arm callback (wake scheduling).
func (n *NSU) SetWakeHook(f func(at timing.PS)) { n.onWork = f }

// Deliver accepts a protocol packet routed to this NSU by the HMC logic
// layer.
func (n *NSU) Deliver(msg any, now timing.PS) {
	if n.flt != nil && n.flt.NSUFailed(now, n.ID) {
		return // dead silicon: arriving packets vanish into the failed stack
	}
	n.idleValid = false
	if n.onWork != nil {
		n.onWork(now)
	}
	switch m := msg.(type) {
	case *core.CmdPacket:
		if n.flt != nil && n.deliverCmdFaulty(m, now) {
			return
		}
		n.cmdQ = append(n.cmdQ, m)
	case *core.RDFResp:
		if n.flt != nil && n.staleData(m.ID, m.Tag, m.Seq, true) {
			return
		}
		k := bufKey{id: m.ID, seq: m.Seq}
		e, ok := n.rd[k]
		if !ok {
			e = &rdEntry{}
			n.rd[k] = e
		}
		e.mask |= m.Mask
		e.pkts++
		for t := 0; t < core.WarpWidth; t++ {
			if m.Mask&(1<<uint(t)) != 0 {
				e.data[t] = m.Data[t]
			}
		}
	case *core.RDFRef:
		// §7.1 extension: the line is in this NSU's read-only cache; build
		// the words locally instead of receiving them over the link.
		if n.flt != nil && n.staleData(m.ID, m.Tag, m.Seq, true) {
			return
		}
		k := bufKey{id: m.ID, seq: m.Seq}
		e, ok := n.rd[k]
		if !ok {
			e = &rdEntry{}
			n.rd[k] = e
		}
		e.mask |= m.Access.Mask
		e.pkts++
		for t := 0; t < core.WarpWidth; t++ {
			if m.Access.Mask&(1<<uint(t)) != 0 {
				addr := m.Access.LineAddr + uint64(m.Access.Offsets[t])*core.WordBytes
				e.data[t] = n.mem.Read32(addr)
			}
		}
	case *core.WTAPacket:
		if n.flt != nil && n.staleData(m.ID, m.Tag, m.Seq, false) {
			return
		}
		k := bufKey{id: m.ID, seq: m.Seq}
		e, ok := n.wt[k]
		if !ok {
			e = &wtEntry{}
			n.wt[k] = e
		}
		if n.flt != nil {
			// Retransmitted WTAs can duplicate a line access: merge by line
			// so the entry completes on distinct lines, not raw packet count.
			merged := false
			for i := range e.accesses {
				if e.accesses[i].LineAddr == m.Access.LineAddr {
					e.accesses[i].Mask |= m.Access.Mask
					for t := 0; t < core.WarpWidth; t++ {
						if m.Access.Mask&(1<<uint(t)) != 0 {
							e.accesses[i].Offsets[t] = m.Access.Offsets[t]
						}
					}
					merged = true
					break
				}
			}
			if !merged {
				e.accesses = append(e.accesses, m.Access)
			}
		} else {
			e.accesses = append(e.accesses, m.Access)
		}
		e.total = m.TotalPkts
	case *core.WriteAck:
		if n.flt != nil {
			// Buffered-commit mode: stores are fire-and-forget at commit
			// time, so the returning acks drain here with no warp waiting.
			return
		}
		for i := range n.warps {
			w := &n.warps[i]
			if w.active && w.id == m.ID {
				w.pending--
				return
			}
		}
		panic("nsu: write ack for unknown warp")
	default:
		panic(fmt.Sprintf("nsu: unexpected message %T", msg))
	}
}

// staleData decides whether an arriving data packet (RDF response/reference
// or WTA) belongs to a superseded, finished, or abandoned offload instance
// and must be discarded instead of polluting the buffers.
func (n *NSU) staleData(id core.OffloadID, tag core.ProtoTag, seq int, isLD bool) bool {
	rec := n.inst[id]
	if rec == nil || rec.tag.Inst != tag.Inst || rec.done || rec.aborted {
		n.st.StaleProtoPkts++
		return true
	}
	for i := range n.warps {
		w := &n.warps[i]
		if w.active && w.id == id {
			consumed := w.seqLD
			if !isLD {
				consumed = w.seqST
			}
			if seq < consumed {
				// Duplicate of an already-consumed entry: dropping it keeps
				// the buffer from growing an orphan no warp will ever pop.
				n.st.StaleProtoPkts++
				return true
			}
			break
		}
	}
	return false
}

// deliverCmdFaulty reconciles an arriving command against the instance
// table. Returns true when the command was fully handled (duplicate replay,
// in-queue substitution, or in-place respawn); false means the caller should
// enqueue it normally.
func (n *NSU) deliverCmdFaulty(m *core.CmdPacket, now timing.PS) bool {
	rec := n.inst[m.ID]
	if rec == nil || rec.tag.Inst != m.Tag.Inst {
		// A new offload instance for this (SM, warp): start tracking it.
		n.inst[m.ID] = &instRec{tag: m.Tag, numLD: m.NumLD, numST: m.NumST}
		return false
	}
	if m.Tag.Attempt <= rec.tag.Attempt {
		n.st.StaleProtoPkts++ // duplicate or out-of-order command
		return true
	}
	rec.tag = m.Tag
	if rec.done {
		// The block already completed; the ack must have been lost. Replay
		// it (a fresh packet: the auditor tracks injection by identity).
		dup := *rec.savedAck
		dup.Tag = m.Tag
		n.out.SendHMCToGPU(now, n.ID, dup.Size(), &dup)
		return true
	}
	for i, c := range n.cmdQ {
		if c.ID == m.ID {
			n.cmdQ[i] = m // not yet spawned: substitute in place
			return true
		}
	}
	for i := range n.warps {
		w := &n.warps[i]
		if w.active && w.id == m.ID {
			// Kill the stale incarnation and respawn from the fresh command;
			// buffered entries stay (same instance, still valid) and the
			// instance record's credit marks prevent double returns.
			n.spawn(i, m, now)
			return true
		}
	}
	// Not queued, not active, not done: the warp was reclaimed after the
	// GPU abandoned the instance. The GPU never retries an abandoned
	// instance, so anything landing here is a straggler from before the
	// abandon — drop it rather than re-enter the queue without a credit.
	n.st.StaleProtoPkts++
	return true
}

// Tick advances the NSU by one of its clock cycles.
func (n *NSU) Tick(now timing.PS) {
	if n.flt != nil {
		if n.flt.NSUFailed(now, n.ID) {
			n.failTick()
			return
		}
		if n.flt.NSUStalled(now, n.ID) {
			// Frozen core: nothing advances, nothing certifies. Dense ticks
			// through the stall window are safe — a stalled NSU must never
			// report idle, or the engine would skip past the window's end.
			n.idleValid = false
			return
		}
	}
	if n.idleValid && n.idleWake > now {
		// A prior evaluation certified nothing can issue strictly before
		// idleWake and no Deliver has arrived since: this tick is empty, so
		// apply its fixed per-cycle statistics without rescanning the warps.
		n.SkipIdle(1)
		return
	}
	n.idleValid = false
	spawned := false
	// Spawn warps for queued offload commands.
	for len(n.cmdQ) > 0 {
		slot := -1
		for i := range n.warps {
			if !n.warps[i].active {
				slot = i
				break
			}
		}
		if slot < 0 {
			break
		}
		cmd := n.cmdQ[0]
		n.cmdQ = n.cmdQ[1:]
		n.spawn(slot, cmd, now)
		spawned = true
		// The command has left the offload command buffer: its credit goes
		// back to the GPU's buffer manager (the warp slot, not the buffer
		// entry, is what the command occupies from now on). Under fault
		// injection a respawned instance's credit was already returned by
		// its first spawn.
		if n.flt != nil {
			if rec := n.inst[cmd.ID]; rec != nil && !rec.cmdRet {
				rec.cmdRet = true
				n.credits.Return(n.ID, core.CmdBuffer, 1)
			}
		} else {
			n.credits.Return(n.ID, core.CmdBuffer, 1)
		}
	}

	occupied := 0
	issued := 0
	for i := range n.warps {
		w := &n.warps[i]
		if !w.active {
			continue
		}
		if n.flt != nil && w.deadline != 0 && now > w.deadline {
			if n.flt.InstanceAbandoned(w.id, w.tag.Inst) {
				// The GPU gave up on this instance and re-executed the block
				// host-side: reclaim the slot and drop the orphaned buffer
				// entries. The stack was quarantined in the same step as the
				// abandon, so the unreturned credits are exempt from the
				// drain check.
				n.abortWarp(w)
				continue
			}
			// Past the nominal window but still live at the GPU — it may be
			// feeding the block slowly under congestion, or a retry may be
			// in flight. Never kill an instance the GPU still owns; just
			// extend the reclamation deadline.
			w.deadline = now + n.abortPS
		}
		occupied++
		if issued >= n.cfg.NSU.IssueWidth || w.readyAt > now {
			continue
		}
		if n.step(w, now) {
			// Temporal SIMT (§4.5): a logical warp instruction occupies the
			// physical datapath for ceil(active/phys) slots.
			issued += n.simtSlots(w.mask)
		}
	}
	n.st.NSUWarpCycleSum += int64(occupied)
	if occupied > 0 {
		n.st.NSUActiveCycles++
	}
	if issued == 0 && !spawned {
		// An empty tick: certify and cache the idle stretch so following
		// empty ticks reduce to SkipIdle(1) and the engine can fast-forward
		// the domain.
		n.computeIdle(now)
	}
}

// simtSlots returns the issue slots one warp instruction occupies given the
// physical SIMD width.
func (n *NSU) simtSlots(mask uint32) int {
	phys := n.cfg.NSU.PhysSIMDWidth
	active := bits.OnesCount32(mask)
	if active == 0 {
		return 1
	}
	return (active + phys - 1) / phys
}

func (n *NSU) spawn(slot int, cmd *core.CmdPacket, now timing.PS) {
	blk, ok := n.blocks[cmd.BlockID]
	if !ok {
		panic(fmt.Sprintf("nsu: unknown block %d", cmd.BlockID))
	}
	w := &n.warps[slot]
	*w = nsuWarp{
		active:  true,
		id:      cmd.ID,
		block:   blk,
		mask:    cmd.Mask,
		tag:     cmd.Tag,
		regs:    make(map[isa.Reg]*[core.WarpWidth]uint64),
		written: make(map[isa.Reg]uint32),
	}
	if n.flt != nil {
		w.deadline = now + n.abortPS
	}
	for _, rv := range cmd.In.Regs {
		*w.reg(isa.Reg(rv.Reg)) = rv.Vals
	}
	n.st.NSUWarpsSpawned++
	if !n.icodeSeen[blk.ID] {
		n.icodeSeen[blk.ID] = true
		n.icodeBytes += int64(len(blk.NSUCode) * isa.InstrBytes)
		n.st.SetNSUICode(n.ID, n.icodeBytes)
	}
}

// effMask applies the instruction predicate on the NSU side (it has the
// predicate registers, either computed locally or transferred in).
func (w *nsuWarp) effMask(in isa.Instr) uint32 {
	if in.Pred == isa.RNone {
		return w.mask
	}
	p := w.reg(in.Pred)
	var m uint32
	for t := 0; t < core.WarpWidth; t++ {
		if w.mask&(1<<uint(t)) == 0 {
			continue
		}
		on := p[t] != 0
		if on != in.PredNeg {
			m |= 1 << uint(t)
		}
	}
	return m
}

// effMaskRO is effMask without the register-map insertion reg() performs for
// never-written predicates (an absent register reads as all zeros either
// way). NextWorkAt must not mutate even semantically-invisible state.
func (w *nsuWarp) effMaskRO(in isa.Instr) uint32 {
	if in.Pred == isa.RNone {
		return w.mask
	}
	p, ok := w.regs[in.Pred]
	var m uint32
	for t := 0; t < core.WarpWidth; t++ {
		if w.mask&(1<<uint(t)) == 0 {
			continue
		}
		on := ok && p[t] != 0
		if on != in.PredNeg {
			m |= 1 << uint(t)
		}
	}
	return m
}

// NextWorkAt implements timing.IdleHint as a pure read of the mirror cache:
// certification happens as a byproduct of an empty Tick, so an NSU whose
// mirror is invalid — it just did work, or a Deliver dirtied it — reads as
// busy and simply runs its next tick densely.
func (n *NSU) NextWorkAt(now timing.PS) timing.PS {
	if !n.idleValid {
		return now
	}
	return n.idleWake
}

// computeIdle mirrors Tick without side effects. A warp that would issue, a
// spawnable command, or a due buffer entry makes the NSU busy now; otherwise
// the NSU wakes at the earliest warp readyAt (warps blocked on buffer fills
// or write acks are woken externally by the Deliver that unblocks them, via
// the delivering domain's own edge). On an idle result the per-cycle
// stall/occupancy profile of the stretch is snapshotted for SkipIdle; a busy
// result leaves the snapshot untouched.
func (n *NSU) computeIdle(now timing.PS) {
	n.idleValid = true
	n.idleWake = now // overwritten below when the scan proves idleness
	occ := int64(0)
	var nRD, nWA int64
	wake := timing.Never
	free := false
	for i := range n.warps {
		w := &n.warps[i]
		if !w.active {
			free = true
			continue
		}
		occ++
		if n.flt != nil && w.deadline != 0 {
			if now > w.deadline {
				return // busy: the abort is due
			}
			if w.deadline+1 < wake {
				wake = w.deadline + 1
			}
		}
		if w.readyAt > now {
			if w.readyAt < wake {
				wake = w.readyAt
			}
			continue
		}
		in := w.block.NSUCode[w.pc]
		switch in.Op {
		case isa.LD:
			need := w.effMaskRO(in)
			if need == 0 {
				return // busy: would issue (predicated-off fast path)
			}
			e, ok := n.rd[bufKey{id: w.id, seq: w.seqLD}]
			if !ok || e.mask&need != need {
				nRD++ // stalls, charging NSUStallRDWait each cycle
				continue
			}
			return // busy
		case isa.ST:
			need := w.effMaskRO(in)
			if need == 0 {
				return // busy
			}
			e, ok := n.wt[bufKey{id: w.id, seq: w.seqST}]
			if !ok || len(e.accesses) < e.total || e.total == 0 {
				continue // silent stall: no counter in step()
			}
			return // busy
		case isa.OFLDEND:
			if w.pending > 0 {
				nWA++ // stalls, charging NSUStallWrAck each cycle
				continue
			}
			return // busy
		default:
			// OFLDBEG, LDC, ALU: always issue when ready.
			return // busy
		}
	}
	if len(n.cmdQ) > 0 && free {
		return // busy: Tick would spawn a warp
	}
	n.skipOcc = occ
	n.skipRD = nRD
	n.skipWA = nWA
	n.idleWake = wake
}

// SkipIdle implements timing.IdleSkipper: batch-apply the statistics that
// `cycles` consecutive empty Tick calls would have recorded, using the
// profile captured by the certifying NextWorkAt.
func (n *NSU) SkipIdle(cycles int64) {
	n.st.NSUWarpCycleSum += n.skipOcc * cycles
	if n.skipOcc > 0 {
		n.st.NSUActiveCycles += cycles
	}
	n.st.NSUStallRDWait += n.skipRD * cycles
	n.st.NSUStallWrAck += n.skipWA * cycles
}

// step executes one instruction of the warp; returns true if it issued.
func (n *NSU) step(w *nsuWarp, now timing.PS) bool {
	in := w.block.NSUCode[w.pc]
	switch in.Op {
	case isa.OFLDBEG:
		w.pc++
		n.st.NSUInstrs++
		return true

	case isa.LD:
		need := w.effMask(in)
		if need == 0 {
			// Fully predicated off: the GPU sent no packets; drop the
			// reserved entry and move on.
			n.retCredLD(w)
			w.seqLD++
			w.pc++
			n.st.NSUInstrs++
			return true
		}
		k := bufKey{id: w.id, seq: w.seqLD}
		e, ok := n.rd[k]
		if !ok || e.mask&need != need {
			n.st.NSUStallRDWait++
			return false // stall until all RDF responses arrive
		}
		dst := w.reg(in.Dst)
		for t := 0; t < core.WarpWidth; t++ {
			if need&(1<<uint(t)) != 0 {
				dst[t] = uint64(e.data[t])
			}
		}
		w.written[in.Dst] |= need
		if n.flt == nil {
			delete(n.rd, k)
		}
		n.retCredLD(w)
		w.seqLD++
		w.pc++
		w.readyAt = now + n.period
		n.st.NSUInstrs++
		return true

	case isa.ST:
		need := w.effMask(in)
		if need == 0 {
			n.retCredST(w)
			w.seqST++
			w.pc++
			n.st.NSUInstrs++
			return true
		}
		k := bufKey{id: w.id, seq: w.seqST}
		e, ok := n.wt[k]
		if !ok || len(e.accesses) < e.total || e.total == 0 {
			return false // stall until all write addresses arrive
		}
		val := w.reg(in.Src[1])
		for _, acc := range e.accesses {
			wp := &core.WritePacket{ID: w.id, Tag: w.tag, Seq: w.seqST, Source: n.ID, Access: acc}
			for t := 0; t < core.WarpWidth; t++ {
				if acc.Mask&(1<<uint(t)) != 0 {
					wp.Data[t] = uint32(val[t])
				}
			}
			if n.flt != nil {
				// Resilient protocol: hold the store in the commit buffer.
				// Memory stays unmutated until OFLD.END so a failed attempt
				// can be re-executed (or re-run host-side) from clean state.
				w.stBuf = append(w.stBuf, wp)
				continue
			}
			for t := 0; t < core.WarpWidth; t++ {
				if acc.Mask&(1<<uint(t)) != 0 {
					// Functional write happens at NSU store execution.
					addr := acc.LineAddr + uint64(acc.Offsets[t])*core.WordBytes
					n.mem.Write32(addr, wp.Data[t])
				}
			}
			w.pending++
			home := n.mem.HMCOf(acc.LineAddr)
			if home == n.ID {
				n.local.SubmitNSUWrite(wp, now)
			} else {
				n.out.SendHMCToHMC(now, n.ID, home, wp.Size(), wp)
			}
		}
		if n.flt == nil {
			delete(n.wt, k)
		}
		n.retCredST(w)
		w.seqST++
		w.pc++
		w.readyAt = now + n.period
		n.st.NSUInstrs++
		return true

	case isa.LDC:
		// Constant-cache load: the NSU's 4 KB constant cache (Table 2)
		// serves it locally with no protocol traffic.
		m := w.effMask(in)
		dst := w.reg(in.Dst)
		addr := w.reg(in.Src[0])
		for t := 0; t < core.WarpWidth; t++ {
			if m&(1<<uint(t)) != 0 {
				dst[t] = uint64(n.mem.Read32(addr[t] + uint64(in.Imm)))
			}
		}
		w.written[in.Dst] |= m
		w.readyAt = now + n.period
		w.pc++
		n.st.NSUInstrs++
		return true

	case isa.OFLDEND:
		if w.pending > 0 {
			n.st.NSUStallWrAck++
			return false // wait for all DRAM write acknowledgments
		}
		ack := &core.AckPacket{ID: w.id, Tag: w.tag, Mask: w.mask}
		for _, r := range w.block.RegsOut {
			m := w.written[r]
			if m == 0 {
				continue // never produced (fully predicated off): nothing to send
			}
			rv := core.RegVals{Reg: int16(r), Mask: m, Vals: *w.reg(r)}
			ack.Out.Regs = append(ack.Out.Regs, rv)
		}
		if n.flt != nil {
			if n.flt.InstanceAbandoned(w.id, w.tag.Inst) {
				// The GPU fell back and re-executed this block host-side
				// while we were draining our last dependency. Committing now
				// would apply stale stores over the host's result: abort
				// instead — no commit, no ack, slot reclaimed.
				n.abortWarp(w)
				return false
			}
			// Commit: apply the buffered stores and post the commit record
			// atomically with the acknowledgment send below. From this step
			// on the block's effects are durable; a duplicate command gets
			// the saved ack replayed instead of a re-execution.
			n.commit(w, now)
		}
		n.out.SendHMCToGPU(now, n.ID, ack.Size(), ack)
		w.active = false
		if n.flt != nil {
			if rec := n.inst[w.id]; rec != nil {
				rec.done = true
				rec.savedAck = ack
				// Every buffer credit of the instance returns in bulk now:
				// entries were retained for replay until this commit, so
				// occupancy never exceeds the credits still outstanding.
				if d := rec.numLD - rec.retLD; d > 0 {
					n.credits.Return(n.ID, core.ReadDataBuffer, d)
				}
				if d := rec.numST - rec.retST; d > 0 {
					n.credits.Return(n.ID, core.WriteAddrBuffer, d)
				}
				rec.retLD, rec.retST = rec.numLD, rec.numST
			}
			// The retained entries (and any late duplicates) drain with the
			// instance so quiescence is reachable.
			n.dropEntries(w.id)
		}
		n.st.NSUInstrs++
		return true

	default:
		if !in.Op.IsALU() {
			panic(fmt.Sprintf("nsu: illegal opcode %v in NSU code", in.Op))
		}
		m := w.effMask(in)
		var a, b, c *[core.WarpWidth]uint64
		if in.Src[0] != isa.RNone {
			a = w.reg(in.Src[0])
		}
		if in.Src[1] != isa.RNone {
			b = w.reg(in.Src[1])
		}
		if in.Src[2] != isa.RNone {
			c = w.reg(in.Src[2])
		}
		dst := w.reg(in.Dst)
		for t := 0; t < core.WarpWidth; t++ {
			if m&(1<<uint(t)) == 0 {
				continue
			}
			var av, bv, cv uint64
			if a != nil {
				av = a[t]
			}
			if b != nil {
				bv = b[t]
			}
			if c != nil {
				cv = c[t]
			}
			dst[t] = isa.Eval(in, av, bv, cv)
		}
		w.written[in.Dst] |= m
		w.readyAt = now + timing.PS(n.cfg.NSU.ALULatency)*n.period
		w.pc++
		n.st.NSUInstrs++
		n.st.IssuedThreadOps += int64(bits.OnesCount32(m))
		return true
	}
}

// commit atomically applies the warp's buffered stores to functional memory
// and posts the instance's commit record, then ships the write packets for
// their timing, traffic, and invalidation effects. The packets are
// fire-and-forget: their values are already durable, so a lost packet or
// ack costs nothing functionally — and the commit record stops the GPU from
// ever re-executing this instance.
func (n *NSU) commit(w *nsuWarp, now timing.PS) {
	n.flt.CommitInstance(w.id, w.tag.Inst)
	for _, wp := range w.stBuf {
		for t := 0; t < core.WarpWidth; t++ {
			if wp.Access.Mask&(1<<uint(t)) != 0 {
				addr := wp.Access.LineAddr + uint64(wp.Access.Offsets[t])*core.WordBytes
				n.mem.Write32(addr, wp.Data[t])
			}
		}
		home := n.mem.HMCOf(wp.Access.LineAddr)
		if home == n.ID {
			n.local.SubmitNSUWrite(wp, now)
		} else {
			n.out.SendHMCToHMC(now, n.ID, home, wp.Size(), wp)
		}
	}
	w.stBuf = nil
}

// retCredLD returns one read-data credit. Under fault injection nothing is
// returned here: entries stay buffered for replay and every credit of the
// instance returns in bulk at commit.
func (n *NSU) retCredLD(w *nsuWarp) {
	if n.flt != nil {
		return
	}
	n.credits.Return(n.ID, core.ReadDataBuffer, 1)
}

// retCredST is retCredLD for the write-address buffer.
func (n *NSU) retCredST(w *nsuWarp) {
	if n.flt != nil {
		return
	}
	n.credits.Return(n.ID, core.WriteAddrBuffer, 1)
}

// dropEntries removes every buffered read-data and write-address entry of
// the given offload. Fault paths only; linear in the buffer population.
func (n *NSU) dropEntries(id core.OffloadID) {
	for k := range n.rd {
		if k.id == id {
			delete(n.rd, k)
		}
	}
	for k := range n.wt {
		if k.id == id {
			delete(n.wt, k)
		}
	}
}

// abortWarp gives up on a warp whose block the GPU has abandoned.
func (n *NSU) abortWarp(w *nsuWarp) {
	w.active = false
	n.dropEntries(w.id)
	if rec := n.inst[w.id]; rec != nil {
		rec.aborted = true
	}
	n.st.NSUAbortedWarps++
}

// failTick is the whole Tick of a permanently failed NSU: tear down all
// state once, then certify permanent idleness so the domain never wakes for
// this unit again (Deliver on a failed NSU discards without dirtying).
func (n *NSU) failTick() {
	if !n.deadCleaned {
		n.deadCleaned = true
		n.cmdQ = nil
		for k := range n.rd {
			delete(n.rd, k)
		}
		for k := range n.wt {
			delete(n.wt, k)
		}
		for i := range n.warps {
			n.warps[i].active = false
		}
		n.skipOcc, n.skipRD, n.skipWA = 0, 0, 0
	}
	n.idleValid = true
	n.idleWake = timing.Never
}

// Busy reports whether the NSU has live warps, queued commands, or buffer
// entries awaiting consumption. A permanently failed NSU is never busy: its
// residual state can make no further progress and its stack is quarantined.
func (n *NSU) Busy() bool {
	if n.Failed() {
		return false
	}
	if len(n.cmdQ) > 0 || len(n.rd) > 0 || len(n.wt) > 0 {
		return true
	}
	for i := range n.warps {
		if n.warps[i].active {
			return true
		}
	}
	return false
}

// BufferOccupancy reports the live entry counts of the NSU-side NDP buffers
// — command queue, read-data, and write-address — for the invariant auditor:
// each must stay within its configured capacity and within the credits the
// GPU has outstanding for this NSU.
func (n *NSU) BufferOccupancy() (cmd, rd, wt int) {
	return len(n.cmdQ), len(n.rd), len(n.wt)
}

// Slots returns the number of hardware warp contexts — the occupancy
// denominator for the Figure 11 metric and the metrics layer's gauge.
func (n *NSU) Slots() int { return len(n.warps) }

// Occupied returns the number of active warp slots (Figure 11 metric).
func (n *NSU) Occupied() int {
	c := 0
	for i := range n.warps {
		if n.warps[i].active {
			c++
		}
	}
	return c
}

// ICodeBytes returns the distinct NSU code footprint executed so far.
func (n *NSU) ICodeBytes() int64 { return n.icodeBytes }
