// Package timing provides a multi-clock-domain tick engine.
//
// The simulated machine has several clock domains (Table 2): the SMs at
// 700 MHz, the crossbar at 1250 MHz, the L2 at 700 MHz, the NSUs at 350 MHz,
// and the DRAM at tCK = 1.5 ns. The engine keeps simulated time in integer
// picoseconds and fires each domain at its own period; components attached to
// a domain are ticked in registration order, once per domain period.
package timing

import (
	"fmt"
	"math"
)

// PS is a simulated time in picoseconds.
type PS = int64

// Ticker is a component driven by a clock domain.
type Ticker interface {
	// Tick advances the component by one cycle of its clock domain.
	Tick(now PS)
}

// TickFunc adapts a function to the Ticker interface.
type TickFunc func(now PS)

// Tick implements Ticker.
func (f TickFunc) Tick(now PS) { f(now) }

// Domain is one clock domain: a period and the components it drives.
type Domain struct {
	Name     string
	PeriodPS PS
	Cycles   int64 // number of cycles fired so far

	next    PS
	tickers []Ticker
}

// Engine schedules a set of clock domains over integer-picosecond time.
type Engine struct {
	domains []*Domain
	now     PS
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// PeriodFromMHz converts a frequency in MHz to an integer period in
// picoseconds (rounded to the nearest ps; at 700 MHz the rounding error is
// 0.03%, irrelevant at simulation fidelity).
func PeriodFromMHz(mhz int) PS {
	if mhz <= 0 {
		panic(fmt.Sprintf("timing: non-positive frequency %d MHz", mhz))
	}
	return PS(math.Round(1e6 / float64(mhz)))
}

// AddDomain registers a clock domain with the given period. The first tick
// fires at t=period (not t=0).
func (e *Engine) AddDomain(name string, periodPS PS) *Domain {
	if periodPS <= 0 {
		panic(fmt.Sprintf("timing: non-positive period %d ps for domain %s", periodPS, name))
	}
	d := &Domain{Name: name, PeriodPS: periodPS, next: periodPS}
	e.domains = append(e.domains, d)
	return d
}

// Attach adds a component to the domain.
func (d *Domain) Attach(t Ticker) { d.tickers = append(d.tickers, t) }

// Now returns the current simulated time.
func (e *Engine) Now() PS { return e.now }

// Step advances simulated time to the next domain edge and ticks every
// domain whose edge falls at that time. It returns false if the engine has
// no domains.
func (e *Engine) Step() bool {
	if len(e.domains) == 0 {
		return false
	}
	next := e.domains[0].next
	for _, d := range e.domains[1:] {
		if d.next < next {
			next = d.next
		}
	}
	e.now = next
	for _, d := range e.domains {
		if d.next == next {
			d.Cycles++
			for _, t := range d.tickers {
				t.Tick(next)
			}
			d.next += d.PeriodPS
		}
	}
	return true
}

// RunUntil steps the engine until the predicate reports done or the time
// limit (in ps) is exceeded. It returns the number of steps taken and
// whether the predicate was satisfied (false means timeout).
func (e *Engine) RunUntil(done func() bool, limitPS PS) (steps int64, ok bool) {
	for !done() {
		if e.now >= limitPS {
			return steps, false
		}
		if !e.Step() {
			return steps, false
		}
		steps++
	}
	return steps, true
}

// CyclesAt converts a picosecond timestamp to whole cycles of the domain.
func (d *Domain) CyclesAt(t PS) int64 { return int64(t / d.PeriodPS) }
