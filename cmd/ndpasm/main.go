// Command ndpasm assembles a textual virtual-ISA kernel (see package asm for
// the syntax), runs the §3 offload analysis on it, and optionally executes
// it on the simulated machine with freshly allocated zero-filled arrays
// bound to its parameters.
//
// Usage:
//
//	ndpasm -in kernel.s                      # assemble + show offload blocks
//	ndpasm -in kernel.s -run -mode dyncache  # and execute it
package main

import (
	"flag"
	"fmt"
	"os"

	"ndpgpu/internal/analyzer"
	"ndpgpu/internal/asm"
	"ndpgpu/internal/config"
	"ndpgpu/internal/sim"
	"ndpgpu/internal/vm"
)

func main() {
	var (
		in         = flag.String("in", "", "assembly source file")
		run        = flag.Bool("run", false, "execute the kernel after assembling")
		mode       = flag.String("mode", "baseline", sim.ModeUsage)
		arrayWords = flag.Int("arraywords", 1<<16, "words allocated per kernel parameter for -run")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("-in is required"))
	}
	src, err := os.ReadFile(*in)
	if err != nil {
		fatal(err)
	}

	cfg := config.Default()
	mem := vm.New(cfg)

	// Bind one freshly allocated zero-filled array per declared parameter.
	params := make([]uint64, asm.DeclaredParams(string(src)))
	for i := range params {
		params[i] = mem.Alloc(4 * *arrayWords)
	}
	k, err := asm.Parse(string(src), params...)
	if err != nil {
		fatal(err)
	}

	prog, err := analyzer.Analyze(k, analyzer.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d instructions, grid %dx%d, %d offload blocks\n",
		k.Name, len(k.Code), k.GridDim, k.BlockDim, len(prog.Blocks))
	for _, b := range prog.Blocks {
		fmt.Printf("  block %d: %d LD / %d ST, score %d, regs in=%v out=%v, %d NSU instrs\n",
			b.ID, b.NumLD, b.NumST, b.Score, b.RegsIn, b.RegsOut, b.NSUInstrs())
	}

	if !*run {
		return
	}
	m, cfg, err := sim.ParseMode(*mode, cfg)
	if err != nil {
		fatal(err)
	}
	machine, err := sim.Launch(cfg, k, mem, m)
	if err != nil {
		fatal(err)
	}
	res, err := machine.Run(0)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("ran in %.3f us (%d SM cycles)\n", float64(res.TimePS)/1e6, res.Cycles)
	fmt.Print(res.Stats.String())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ndpasm:", err)
	os.Exit(1)
}
