package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxBodyBytes bounds a /run request body; a full Config is ~2 KB.
const maxBodyBytes = 1 << 20

// RunResponse is the wire form of one served result.
type RunResponse struct {
	Key       string             `json:"key"`
	Workload  string             `json:"workload"`
	Mode      string             `json:"mode"` // canonical mode spelling
	Scale     int                `json:"scale"`
	Cached    bool               `json:"cached"`
	Coalesced bool               `json:"coalesced,omitempty"`
	TimePS    int64              `json:"time_ps"`
	EnergyPJ  float64            `json:"energy_pj"`
	SimWallMS float64            `json:"sim_wall_ms"` // cold simulation cost (also on cache hits)
	Digest    map[string]float64 `json:"digest"`
	Stats     json.RawMessage    `json:"stats,omitempty"` // full statistics bundle
}

// errorBody is the JSON error envelope every non-200 carries.
type errorBody struct {
	Error string `json:"error"`
}

// Server is the stdlib HTTP front end over a Scheduler.
//
//	POST /run      — submit a run; ?stream=1 or Accept: text/event-stream
//	                 upgrades to SSE progress + final result
//	GET  /status   — scheduler counters as JSON
//	GET  /metrics  — the same counters, one "ndpserve_<name> <value>" per line
//	GET  /healthz  — liveness (the process is up and answering)
//	GET  /readyz   — readiness (accepting runs: journal replayed, not draining)
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
	start time.Time

	ready     atomic.Bool
	drainCh   chan struct{}
	drainOnce sync.Once
}

// NewServer wraps a scheduler in the HTTP API. The server starts ready;
// cmd/ndpserve flips readiness off around journal replay with SetReady.
func NewServer(s *Scheduler) *Server {
	srv := &Server{sched: s, mux: http.NewServeMux(), start: time.Now(), drainCh: make(chan struct{})}
	srv.ready.Store(true)
	srv.mux.HandleFunc("/run", srv.handleRun)
	srv.mux.HandleFunc("/status", srv.handleStatus)
	srv.mux.HandleFunc("/metrics", srv.handleMetrics)
	srv.mux.HandleFunc("/healthz", srv.handleHealthz)
	srv.mux.HandleFunc("/readyz", srv.handleReadyz)
	return srv
}

// SetReady flips readiness: while false, /readyz reports 503 and /run
// refuses new work with 503 + Retry-After, but /healthz stays green —
// exactly the split a load balancer needs during startup replay.
func (s *Server) SetReady(ok bool) { s.ready.Store(ok) }

// Ready reports whether the server accepts new runs.
func (s *Server) Ready() bool { return s.ready.Load() }

// BeginDrain starts a graceful shutdown at the HTTP layer: readiness goes
// false (load balancers stop routing) and every active SSE stream is
// terminated with a final "shutdown" event instead of hanging until TCP
// timeout. Call it before Scheduler.Shutdown. Idempotent.
func (s *Server) BeginDrain() {
	s.ready.Store(false)
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{"POST a run request"})
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{"request body too large"})
		} else {
			writeJSON(w, http.StatusBadRequest, errorBody{"reading request body: " + err.Error()})
		}
		return
	}
	req, err := ParseRunRequest(data)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{err.Error()})
		return
	}
	if req.Client == "" {
		req.Client = clientID(r)
	}
	if !s.ready.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{"server not ready (replaying journal or draining)"})
		return
	}

	if wantsStream(r) {
		s.streamRun(w, r, req)
		return
	}

	served, err := s.sched.Submit(r.Context(), req)
	if err != nil {
		s.writeSubmitError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, buildResponse(req, served))
}

func (s *Server) writeSubmitError(w http.ResponseWriter, err error) {
	var qe *QuarantineError
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After",
			strconv.Itoa(int(s.sched.RetryAfter().Round(time.Second)/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, errorBody{err.Error()})
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{err.Error()})
	case errors.As(err, &qe):
		// Circuit open: the cached failure, with the remaining TTL as the
		// retry hint (the breaker goes half-open when it expires).
		if left := int(time.Until(qe.Until).Round(time.Second) / time.Second); left > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(left))
		}
		writeJSON(w, http.StatusServiceUnavailable, errorBody{err.Error()})
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The client went away; nothing useful to write.
	default:
		writeJSON(w, http.StatusInternalServerError, errorBody{err.Error()})
	}
}

func buildResponse(req *Request, served Served) *RunResponse {
	out := served.Outcome
	resp := &RunResponse{
		Key:       req.Key,
		Workload:  req.Workload,
		Mode:      req.ModeSpec,
		Scale:     req.Scale,
		Cached:    served.Cached,
		Coalesced: served.Coalesced,
		TimePS:    out.TimePS,
		EnergyPJ:  out.EnergyPJ,
		SimWallMS: float64(out.Wall) / float64(time.Millisecond),
		Digest:    out.Digest,
	}
	if out.Stats != nil {
		if raw, err := json.Marshal(out.Stats); err == nil {
			resp.Stats = raw
		}
	}
	return resp
}

func wantsStream(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "1" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// streamRun serves one request as Server-Sent Events: zero or more
// "progress" events (epoch samples from the running simulation), then one
// "result" event carrying the same JSON a plain POST returns, or one
// "error" event.
func (s *Server) streamRun(w http.ResponseWriter, r *http.Request, req *Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorBody{"streaming unsupported by this connection"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	events := make(chan Progress, 64)
	type doneMsg struct {
		served Served
		err    error
	}
	doneCh := make(chan doneMsg, 1)
	go func() {
		served, err := s.sched.SubmitStream(r.Context(), req, events)
		doneCh <- doneMsg{served, err}
	}()

	emit := func(event string, v any) {
		data, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		flusher.Flush()
	}
	for {
		select {
		case p := <-events:
			emit("progress", p)
		case d := <-doneCh:
			// Drain any progress that raced the completion.
			for {
				select {
				case p := <-events:
					emit("progress", p)
					continue
				default:
				}
				break
			}
			if d.err != nil {
				emit("error", errorBody{d.err.Error()})
				return
			}
			emit("result", buildResponse(req, d.served))
			return
		case <-s.drainCh:
			// Drain-on-SIGTERM: tell the client explicitly instead of leaving
			// the stream hanging until TCP timeout. The admitted execution
			// still completes server-side and lands in the cache/journal; the
			// client resubmits after restart and gets a map lookup.
			emit("shutdown", errorBody{"server draining; resubmit to pick up the result"})
			return
		case <-r.Context().Done():
			// Client hung up; the scheduler-side waiter exits on the same
			// context, and the execution (if admitted) still completes.
			return
		}
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	snap := s.sched.Snapshot()
	writeJSON(w, http.StatusOK, struct {
		UptimeSec  float64           `json:"uptime_sec"`
		Ready      bool              `json:"ready"`
		Counters   Counters          `json:"counters"`
		Quarantine []QuarantineEntry `json:"quarantine,omitempty"`
		Journal    *JournalStats     `json:"journal,omitempty"`
	}{time.Since(s.start).Seconds(), s.ready.Load(), snap,
		s.sched.QuarantineSnapshot(), s.sched.JournalStats()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := s.sched.Snapshot()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ndpserve_submitted_total %d\n", c.Submitted)
	fmt.Fprintf(w, "ndpserve_cache_hits_total %d\n", c.CacheHits)
	fmt.Fprintf(w, "ndpserve_coalesced_total %d\n", c.Coalesced)
	fmt.Fprintf(w, "ndpserve_executed_total %d\n", c.Executed)
	fmt.Fprintf(w, "ndpserve_errors_total %d\n", c.Errors)
	fmt.Fprintf(w, "ndpserve_rejected_total %d\n", c.Rejected)
	fmt.Fprintf(w, "ndpserve_queue_depth %d\n", c.Queued)
	fmt.Fprintf(w, "ndpserve_running %d\n", c.Running)
	fmt.Fprintf(w, "ndpserve_in_flight %d\n", c.InFlight)
	fmt.Fprintf(w, "ndpserve_queue_depth_max %d\n", c.MaxQueued)
	fmt.Fprintf(w, "ndpserve_in_flight_max %d\n", c.MaxInFlight)
	fmt.Fprintf(w, "ndpserve_cache_entries %d\n", c.CacheEntries)
	ready := 0
	if s.ready.Load() {
		ready = 1
	}
	fmt.Fprintf(w, "ndpserve_ready %d\n", ready)
	fmt.Fprintf(w, "ndpserve_panics_total %d\n", c.Panics)
	fmt.Fprintf(w, "ndpserve_watchdog_kills_total %d\n", c.WatchdogKills)
	fmt.Fprintf(w, "ndpserve_quarantined %d\n", c.Quarantined)
	fmt.Fprintf(w, "ndpserve_quarantine_hits_total %d\n", c.QuarantineHits)
	fmt.Fprintf(w, "ndpserve_recovered_total %d\n", c.Recovered)
	fmt.Fprintf(w, "ndpserve_journal_errors_total %d\n", c.JournalErrors)
	if js := s.sched.JournalStats(); js != nil {
		fmt.Fprintf(w, "ndpserve_journal_appends_total %d\n", js.Appends)
		fmt.Fprintf(w, "ndpserve_journal_syncs_total %d\n", js.Syncs)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: 200 only when the server accepts new
// runs (journal replay finished, not draining). Liveness stays on /healthz.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "not ready")
		return
	}
	fmt.Fprintln(w, "ready")
}

// clientID derives a fairness identity when the request body carries none:
// the X-Client header, else the remote host.
func clientID(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}
