// Command ndpsweep regenerates the paper's tables and figures.
//
// Usage:
//
//	ndpsweep -exp all
//	ndpsweep -exp fig9 -scale 1
//
// Experiments: table1 table2 fig5 fig7 fig8 fig9 fig10 fig11 inval
// morecompute nsufreq rocache topology overhead backends all.
//
// backends is the cross-architecture sweep: every workload under every
// golden mode on each architecture backend (paper, coda, coda-ft, ndpage —
// see README "Architecture backends"), reporting runtime relative to the
// paper design and a verdict on unrestricted placement vs co-location.
// With -csvdir it also writes backends.csv.
//
// A failing experiment no longer aborts the sweep: the remaining
// experiments still run (dependents of the failed one are skipped), a
// FAILURES section lists every error, and the exit status is nonzero.
// An unknown -exp name exits with status 2 and lists the valid names.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"ndpgpu/internal/config"
	"ndpgpu/internal/experiments"
	"ndpgpu/internal/fault"
	"ndpgpu/internal/prof"
	"ndpgpu/internal/report"
	"ndpgpu/internal/sim"
)

// writeCSV writes a table into dir/name.
func writeCSV(dir, name string, t *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

// leafExp is one standalone design-space experiment with no dependents; the
// table is package-level (rather than inlined in run) so tests can append a
// deliberately failing entry and exercise the FAILURES path end to end.
type leafExp struct {
	name string
	fn   func(io.Writer, int) error
}

var leafExps = []leafExp{
	{"morecompute", experiments.MoreCompute},
	{"nsufreq", experiments.NSUFreq},
	{"rocache", experiments.ROCacheAblation},
	{"topology", experiments.TopologyAblation},
}

// knownExps returns every accepted -exp value, sorted.
func knownExps() []string {
	names := []string{"all", "table1", "table2", "overhead", "fig5",
		"fig7", "fig8", "fig9", "fig10", "fig11", "inval", "backends"}
	for _, l := range leafExps {
		names = append(names, l.name)
	}
	sort.Strings(names)
	return names
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole sweep behind a testable seam: parse args, run the selected
// experiments, and return the process exit status (0 success, 1 experiment
// failures, 2 usage errors).
func run(args []string, w, werr io.Writer) int {
	fs := flag.NewFlagSet("ndpsweep", flag.ContinueOnError)
	fs.SetOutput(werr)
	var (
		exp     = fs.String("exp", "all", "experiment to run (see command doc)")
		scale   = fs.Int("scale", 1, "problem-size scale factor")
		audit   = fs.Bool("audit", false, "preflight the invariant audit suite before the sweep")
		faults  = fs.String("faults", "", "fault schedule applied to every run (see README)")
		csvDir  = fs.String("csvdir", "", "also write fig7/fig9 speedups as CSV into this directory")
		jobs    = fs.Int("j", runtime.GOMAXPROCS(0), "concurrent simulations per experiment")
		server  = fs.String("server", "", "client mode: route every run through the ndpserve instance at this base URL")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = fs.String("memprofile", "", "write a heap profile to this file on exit")
		mtxProf = fs.String("mutexprofile", "", "write a mutex-contention profile to this file on exit")
		blkProf = fs.String("blockprofile", "", "write a blocking profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	valid := false
	for _, n := range knownExps() {
		if *exp == n {
			valid = true
			break
		}
	}
	if !valid {
		fmt.Fprintf(werr, "ndpsweep: unknown experiment %q (valid: %s)\n",
			*exp, strings.Join(knownExps(), " "))
		return 2
	}

	stopProf, err := prof.StartOpts(prof.Options{
		CPU: *cpuProf, Mem: *memProf, Mutex: *mtxProf, Block: *blkProf})
	if err != nil {
		fmt.Fprintln(werr, "ndpsweep:", err)
		return 1
	}
	defer stopProf()
	experiments.Jobs = *jobs

	// Client mode: every RunOne becomes an HTTP request against a running
	// ndpserve instance, which memoizes by content digest — a re-sweep of
	// already-served points costs map lookups, not simulations. -j still
	// bounds client-side concurrency. UseLocal keeps repeated run() calls
	// (tests) from leaking a stale executor into later sweeps.
	experiments.UseLocal()
	if *server != "" {
		if err := experiments.UseServer(*server, "ndpsweep"); err != nil {
			fmt.Fprintln(werr, "ndpsweep:", err)
			return 2
		}
		defer experiments.UseLocal()
	}

	cfg := config.Default()
	if *faults != "" {
		fc, err := fault.Parse(*faults, cfg.NumHMCs, cfg.HMC.NumVaults)
		if err != nil {
			fmt.Fprintln(werr, "ndpsweep: bad -faults schedule:", err)
			return 2
		}
		cfg.Fault = fc
	}
	start := time.Now()

	need := func(names ...string) bool {
		if *exp == "all" {
			return true
		}
		for _, n := range names {
			if *exp == n {
				return true
			}
		}
		return false
	}

	// check records a per-experiment error without aborting the sweep, so
	// a single broken leg cannot hide the results of every later experiment.
	// It returns false on error; callers use that to skip dependents.
	var failures []string
	check := func(name string, err error) bool {
		if err == nil {
			return true
		}
		fmt.Fprintf(werr, "ndpsweep: %s: %v\n", name, err)
		failures = append(failures, fmt.Sprintf("%s: %v", name, err))
		return false
	}
	skip := func(names ...string) {
		for _, n := range names {
			if need(n) {
				failures = append(failures, n+": skipped (dependency failed)")
			}
		}
	}

	// Preflight: refuse to regenerate paper numbers from a simulator that
	// violates its own invariants or diverges from the reference interpreter.
	if *audit {
		bad := 0
		n := 0
		for _, r := range sim.RunAuditSuite(sim.AuditConfig(), *scale, nil) {
			n++
			if !r.Ok() {
				bad++
				detail := r.FirstBad
				if r.Err != nil {
					detail = r.Err.Error()
				} else if !r.MemMatch && detail == "" {
					detail = "memory differs from the reference interpreter"
				}
				fmt.Fprintf(werr, "ndpsweep: audit %s/%s: %s\n", r.Workload, r.Mode, detail)
			}
		}
		if bad > 0 {
			fmt.Fprintf(werr, "ndpsweep: audit preflight: %d of %d legs failed\n", bad, n)
			return 1
		}
		fmt.Fprintf(w, "[audit preflight: %d legs clean]\n", n)
	}

	if need("table1") {
		check("table1", experiments.Table1(w, cfg, *scale))
	}
	if need("table2") {
		experiments.Table2(w, cfg)
	}
	if need("overhead") {
		experiments.Overhead(w, cfg)
	}
	if need("fig5") {
		experiments.Figure5(w)
	}
	if need("fig7", "fig8") {
		f7, err := experiments.Figure7(w, cfg, *scale)
		if check("fig7", err) {
			if need("fig8") {
				experiments.Figure8(w, f7)
			}
			if *csvDir != "" {
				t := report.New("Figure 7 speedups over Baseline", "workload", "morecore", "naive")
				for _, wl := range experiments.Workloads() {
					base := f7.Rows[wl]["Baseline"]
					t.AddFloats(wl,
						f7.Rows[wl]["Baseline_MoreCore"].Speedup(base),
						f7.Rows[wl]["NaiveNDP"].Speedup(base))
				}
				check("fig7.csv", writeCSV(*csvDir, "fig7.csv", t))
			}
		} else {
			skip("fig8")
		}
	}
	if need("fig9", "fig10", "fig11", "inval") {
		f9, err := experiments.Figure9(w, cfg, *scale)
		if check("fig9", err) {
			if *csvDir != "" {
				cols := append([]string{"workload"}, f9.Modes[1:]...)
				t := report.New("Figure 9 speedups over Baseline", cols...)
				for _, wl := range experiments.Workloads() {
					base := f9.Rows[wl]["Baseline"]
					vals := make([]float64, 0, len(f9.Modes)-1)
					for _, mode := range f9.Modes[1:] {
						vals = append(vals, f9.Rows[wl][mode].Speedup(base))
					}
					t.AddFloats(wl, vals...)
				}
				check("fig9.csv", writeCSV(*csvDir, "fig9.csv", t))
			}
			if need("fig10") {
				experiments.Figure10(w, f9)
			}
			if need("fig11") {
				experiments.Figure11(w, f9, cfg)
			}
			if need("inval") {
				experiments.InvalOverhead(w, f9)
			}
		} else {
			skip("fig10", "fig11", "inval")
		}
	}
	if need("backends") {
		bk, err := experiments.Backends(w, cfg, *scale)
		if check("backends", err) && *csvDir != "" {
			cols := append([]string{"workload", "mode"}, experiments.BackendArchs...)
			t := report.New("Cross-architecture runtime (us)", cols...)
			for _, mode := range bk.Modes {
				for _, wl := range experiments.Workloads() {
					row := []string{wl, mode}
					for _, arch := range bk.Archs {
						row = append(row, fmt.Sprintf("%.3f",
							float64(bk.Get(wl, arch, mode).TimePS)/1e6))
					}
					t.AddRow(row...)
				}
			}
			check("backends.csv", writeCSV(*csvDir, "backends.csv", t))
		}
	}
	for _, l := range leafExps {
		if need(l.name) {
			check(l.name, l.fn(w, *scale))
		}
	}
	if runs, wall, max, p50 := experiments.RunTallyDetail(); runs > 0 {
		fmt.Fprintf(w, "\n[%s in %.1fs: %d runs, %.1fs run-wall total, %.2fs/run avg, %.2fs max, %.2fs p50, -j %d]\n",
			*exp, time.Since(start).Seconds(), runs, wall.Seconds(),
			wall.Seconds()/float64(runs), max.Seconds(), p50.Seconds(), *jobs)
	} else {
		fmt.Fprintf(w, "\n[%s in %.1fs]\n", *exp, time.Since(start).Seconds())
	}
	if len(failures) > 0 {
		fmt.Fprintf(w, "\nFAILURES (%d):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(w, "  %s\n", f)
		}
		return 1
	}
	return 0
}
