package sim

import (
	"testing"

	"ndpgpu/internal/vm"
	"ndpgpu/internal/workloads"
)

// shortAuditWorkloads is the subset exercised under -short: one regular
// streaming kernel, one irregular/indirect one, and one with scratchpad and
// barrier phases.
var shortAuditWorkloads = map[string]bool{"VADD": true, "BFS": true, "FWT": true}

// TestAuditSuite is the oracle differential harness: every Table 1 workload
// under baseline, naive-NDP (fully partitioned), and dynamic-NDP execution,
// with every invariant auditor enabled, asserting zero violations and a
// final memory image bit-identical to the internal/interp oracle.
func TestAuditSuite(t *testing.T) {
	cfg := AuditConfig()
	for _, abbr := range workloads.Abbrs() {
		if testing.Short() && !shortAuditWorkloads[abbr] {
			continue
		}
		for _, mode := range AuditModes {
			abbr, mode := abbr, mode
			t.Run(abbr+"/"+mode.Name, func(t *testing.T) {
				t.Parallel()
				r := RunAuditOne(cfg, abbr, mode, 1)
				if r.Err != nil {
					t.Fatalf("audit run failed: %v", r.Err)
				}
				if r.Violations != 0 {
					t.Fatalf("%d invariant violation(s); first: %s", r.Violations, r.FirstBad)
				}
				if !r.MemMatch {
					t.Fatalf("final memory differs from the interp oracle")
				}
			})
		}
	}
}

// TestAuditCatchesBrokenMachine guards the harness itself: a machine whose
// fabric auditor is fed a fabricated duplicate injection must report it.
func TestAuditDetectsSeededViolation(t *testing.T) {
	cfg := AuditConfig()
	r := RunAuditOne(cfg, "VADD", Baseline, 1)
	if r.Err != nil || r.Violations != 0 {
		t.Fatalf("clean precondition failed: %+v", r)
	}
	// Seed a violation through the public auditor API and check it surfaces.
	mem := vm.New(cfg)
	w, err := workloads.Build("VADD", mem, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Launch(cfg, w.Kernel, mem, Baseline)
	if err != nil {
		t.Fatal(err)
	}
	aud := m.EnableAudit()
	aud.Reportf(0, "test", "seeded", "deliberate violation")
	if aud.Count() != 1 || aud.Err() == nil {
		t.Fatalf("seeded violation not surfaced: count=%d err=%v", aud.Count(), aud.Err())
	}
}
