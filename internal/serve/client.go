package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"

	"ndpgpu/internal/stats"
)

// Client is a thin HTTP client for an ndpserve instance — the transport
// behind ndpsweep's -server client mode. Transient failures (connection
// refused/reset, a 5xx from a server mid-recovery) are retried with capped
// exponential backoff plus jitter, so a sweep leg survives a server restart
// instead of failing.
type Client struct {
	base string
	hc   *http.Client

	maxAttempts int           // tries per request before giving up
	baseBackoff time.Duration // first retry delay; doubles per attempt
	maxBackoff  time.Duration // backoff cap (jitter applies under it)

	mu    sync.Mutex
	rng   *rand.Rand
	sleep func(time.Duration) // test seam
}

// NewClient returns a client for the server at base (e.g.
// "http://localhost:8347"). Requests have no client-side timeout: a cold
// full-size simulation can legitimately take minutes, and the server bounds
// its own admission. Default retry policy: 5 attempts, 200ms base backoff
// doubling to a 5s cap.
func NewClient(base string) *Client {
	return &Client{
		base:        strings.TrimRight(base, "/"),
		hc:          &http.Client{},
		maxAttempts: 5,
		baseBackoff: 200 * time.Millisecond,
		maxBackoff:  5 * time.Second,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
		sleep:       time.Sleep,
	}
}

// SetRetry overrides the transient-failure retry policy: attempts tries per
// request (minimum 1), with exponential backoff from base capped at max.
func (c *Client) SetRetry(attempts int, base, max time.Duration) {
	if attempts < 1 {
		attempts = 1
	}
	c.maxAttempts, c.baseBackoff, c.maxBackoff = attempts, base, max
}

// backoff returns the jittered delay before retry number attempt (0-based):
// half the capped exponential step plus a random half, so synchronized
// clients spread out.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.baseBackoff
	for i := 0; i < attempt && d < c.maxBackoff; i++ {
		d *= 2
	}
	if d > c.maxBackoff {
		d = c.maxBackoff
	}
	if d <= 0 {
		return 0
	}
	c.mu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.mu.Unlock()
	return d/2 + j
}

// Healthz probes the server's liveness endpoint.
func (c *Client) Healthz() error {
	hc := &http.Client{Timeout: 5 * time.Second}
	resp, err := hc.Get(c.base + "/healthz")
	if err != nil {
		return fmt.Errorf("ndpserve unreachable at %s: %w", c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ndpserve %s/healthz: %s", c.base, resp.Status)
	}
	return nil
}

// transientError marks a failure worth retrying: the connection never
// happened, broke mid-flight, or the server answered 5xx (a just-restarted
// or recovering instance).
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Run submits one request and decodes the result. The server's 429
// backpressure is honored transparently: the client sleeps the advertised
// Retry-After (capped) and retries without burning an attempt — that is the
// server queuing client-side, not a failure. Transient failures (transport
// errors, 5xx) consume attempts and back off exponentially with jitter;
// permanent errors (4xx) fail immediately.
func (c *Client) Run(rr RunRequest) (*RunResponse, *stats.Stats, error) {
	body, err := json.Marshal(rr)
	if err != nil {
		return nil, nil, err
	}
	attempt := 0
	for {
		resp, retry, err := c.post(body)
		if err != nil {
			var te *transientError
			if errors.As(err, &te) && attempt < c.maxAttempts-1 {
				// A recovering server may send Retry-After with its 503;
				// honor it as a floor under the exponential delay.
				delay := c.backoff(attempt)
				if retry > delay {
					delay = retry
				}
				c.sleep(delay)
				attempt++
				continue
			}
			return nil, nil, err
		}
		if retry > 0 {
			c.sleep(retry)
			continue
		}
		var st *stats.Stats
		if len(resp.Stats) > 0 {
			st = new(stats.Stats)
			if err := json.Unmarshal(resp.Stats, st); err != nil {
				return nil, nil, fmt.Errorf("decoding stats bundle: %w", err)
			}
		}
		return resp, st, nil
	}
}

// retryAfter parses a Retry-After header (seconds form), capped at 10s.
func retryAfter(resp *http.Response, fallback time.Duration) time.Duration {
	delay := fallback
	if s := resp.Header.Get("Retry-After"); s != "" {
		var secs int
		if _, err := fmt.Sscanf(s, "%d", &secs); err == nil && secs > 0 {
			delay = time.Duration(secs) * time.Second
		}
	}
	if delay > 10*time.Second {
		delay = 10 * time.Second
	}
	return delay
}

// post performs one POST /run. A 429 returns a positive retry delay with no
// error; a transport failure or 5xx returns a *transientError (plus any
// advertised Retry-After); other non-200s are permanent errors.
func (c *Client) post(body []byte) (*RunResponse, time.Duration, error) {
	resp, err := c.hc.Post(c.base+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, &transientError{fmt.Errorf("ndpserve: %w", err)}
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		delay := retryAfter(resp, time.Second)
		io.Copy(io.Discard, resp.Body)
		return nil, delay, nil
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, &transientError{err}
	}
	if resp.StatusCode != http.StatusOK {
		rerr := fmt.Errorf("ndpserve: %s", resp.Status)
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			rerr = fmt.Errorf("ndpserve: %s: %s", resp.Status, eb.Error)
		}
		if resp.StatusCode >= 500 {
			return nil, retryAfter(resp, 0), &transientError{rerr}
		}
		return nil, 0, rerr
	}
	var rr RunResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		return nil, 0, fmt.Errorf("decoding run response: %w", err)
	}
	return &rr, 0, nil
}
