package gpu

import (
	"testing"

	"ndpgpu/internal/analyzer"
	"ndpgpu/internal/config"
	"ndpgpu/internal/core"
	"ndpgpu/internal/isa"
	"ndpgpu/internal/kernel"
	"ndpgpu/internal/noc"
	"ndpgpu/internal/stats"
	"ndpgpu/internal/vm"
)

// harness builds a minimal GPU around a kernel for white-box tests.
func harness(t *testing.T, k *kernel.Kernel) (*GPU, *SM, *warp) {
	t.Helper()
	cfg := config.Default()
	cfg.GPU.NumSMs = 1
	mem := vm.New(cfg)
	mem.Alloc(1 << 20)
	prog, err := analyzer.Analyze(k, analyzer.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := stats.New()
	fab := noc.NewFabric(cfg, st)
	g := New(cfg, prog, mem, fab, st, core.Never{})
	sm := g.sms[0]
	sm.refill()
	if sm.warps[0] == nil {
		t.Fatal("no warp resident")
	}
	return g, sm, sm.warps[0]
}

func simpleKernel(t *testing.T) *kernel.Kernel {
	t.Helper()
	kb := kernel.NewBuilder()
	kb.OpImm(isa.SHLI, 16, kernel.RegGTID, 2)
	kb.Op3(isa.ADD, 17, kernel.RegParam0, 16)
	kb.Ld(18, 17, 0)
	kb.Op3(isa.FADD, 19, 18, 18)
	kb.St(17, 0, 19)
	kb.Exit()
	return kb.MustBuild("k", 1, 32, 0x10000)
}

func TestCoalesceContiguous(t *testing.T) {
	_, sm, w := harness(t, simpleKernel(t))
	in := isa.New(isa.LD)
	in.Dst, in.Src[0] = 18, 17
	// 32 consecutive words starting line-aligned: one aligned access.
	for tid := 0; tid < 32; tid++ {
		w.regs[17][tid] = 0x10000 + uint64(4*tid)
	}
	lines := sm.coalesce(w, in, 0xFFFFFFFF)
	if len(lines) != 1 {
		t.Fatalf("lines = %d, want 1", len(lines))
	}
	if !lines[0].Aligned {
		t.Fatal("identity offsets must classify as aligned (§4.1.1)")
	}
	if lines[0].Mask != 0xFFFFFFFF {
		t.Fatalf("mask = %#x", lines[0].Mask)
	}
}

func TestCoalesceBroadcastMisaligned(t *testing.T) {
	_, sm, w := harness(t, simpleKernel(t))
	in := isa.New(isa.LD)
	in.Dst, in.Src[0] = 18, 17
	for tid := 0; tid < 32; tid++ {
		w.regs[17][tid] = 0x10000 + 8 // all threads read word 2
	}
	lines := sm.coalesce(w, in, 0xFFFFFFFF)
	if len(lines) != 1 {
		t.Fatalf("lines = %d, want 1", len(lines))
	}
	if lines[0].Aligned {
		t.Fatal("broadcast access must be misaligned (offset_i != i)")
	}
	for tid := 0; tid < 32; tid++ {
		if lines[0].Offsets[tid] != 2 {
			t.Fatalf("offset[%d] = %d, want 2", tid, lines[0].Offsets[tid])
		}
	}
}

func TestCoalesceDivergent(t *testing.T) {
	_, sm, w := harness(t, simpleKernel(t))
	in := isa.New(isa.LD)
	in.Dst, in.Src[0] = 18, 17
	// 128-byte stride: every thread its own line.
	for tid := 0; tid < 32; tid++ {
		w.regs[17][tid] = 0x10000 + uint64(128*tid)
	}
	lines := sm.coalesce(w, in, 0xFFFFFFFF)
	if len(lines) != 32 {
		t.Fatalf("lines = %d, want 32", len(lines))
	}
}

func TestCoalesceRespectsMask(t *testing.T) {
	_, sm, w := harness(t, simpleKernel(t))
	in := isa.New(isa.LD)
	in.Dst, in.Src[0] = 18, 17
	for tid := 0; tid < 32; tid++ {
		w.regs[17][tid] = 0x10000 + uint64(128*tid)
	}
	lines := sm.coalesce(w, in, 0x1) // one active thread
	if len(lines) != 1 {
		t.Fatalf("lines = %d, want 1", len(lines))
	}
}

func TestMaxResidentCTAsRegisterLimit(t *testing.T) {
	kb := kernel.NewBuilder()
	kb.MovI(60, 1) // forces RegsUsed = 61
	kb.Exit()
	k := kb.MustBuild("fat", 64, 256)
	_, sm, _ := harness(t, k)
	// 61 regs x 256 threads = 15616 regs/CTA; 32768/15616 = 2 CTAs.
	if got := sm.maxResidentCTAs(); got != 2 {
		t.Fatalf("resident CTAs = %d, want 2 (register limit)", got)
	}
}

func TestBlockInfos(t *testing.T) {
	mem := vm.New(config.Default())
	mem.Alloc(1 << 16)
	prog, err := analyzer.Analyze(simpleKernel(t), analyzer.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	infos := BlockInfos(prog)
	if len(infos) != len(prog.Blocks) {
		t.Fatalf("infos = %d, blocks = %d", len(infos), len(prog.Blocks))
	}
	for i, b := range prog.Blocks {
		if infos[i].NumLD != b.NumLD || infos[i].NumST != b.NumST {
			t.Fatalf("info %d mismatch", i)
		}
	}
}

func TestStallClassificationWarpIdle(t *testing.T) {
	g, sm, w := harness(t, simpleKernel(t))
	// Force the warp into the ack-wait state: no issuable instruction.
	w.waitAck = true
	before := g.st.NoIssue[stats.WarpIdle]
	sm.tick(1429)
	sm.flushIdle() // certify-first defers an empty tick's classification
	if g.st.NoIssue[stats.WarpIdle] != before+1 {
		t.Fatalf("ack-blocked warp not classified as warp idle: %+v", g.st.NoIssue)
	}
}

func TestStallClassificationDependency(t *testing.T) {
	g, sm, w := harness(t, simpleKernel(t))
	w.pc = 3                 // fadd r19, r18, r18
	w.regReady[18] = 1 << 50 // operand far in the future
	sm.tick(1429)            // cold L1I fetch first
	before := g.st.NoIssue[stats.DependencyStall]
	sm.tick(1 << 40) // fetch long since complete; operand still pending
	sm.flushIdle()   // certify-first defers an empty tick's classification
	if g.st.NoIssue[stats.DependencyStall] != before+1 {
		t.Fatalf("operand hazard not classified as dependency stall: %+v", g.st.NoIssue)
	}
}

func TestSchedulerOrderGTO(t *testing.T) {
	g, sm, _ := harness(t, simpleKernel(t))
	g.cfg.GPU.SchedulerKind = "gto"
	sm.greedyWarp = 5
	order := sm.schedOrder()
	if order[0] != 5 {
		t.Fatalf("GTO must visit the greedy warp first, got %v", order[:3])
	}
	seen := map[int]bool{}
	for _, slot := range order {
		if seen[slot] {
			t.Fatalf("slot %d visited twice", slot)
		}
		seen[slot] = true
	}
	if len(seen) != len(sm.warps) {
		t.Fatalf("order covers %d of %d slots", len(seen), len(sm.warps))
	}
}

func TestSchedulerOrderRR(t *testing.T) {
	g, sm, _ := harness(t, simpleKernel(t))
	g.cfg.GPU.SchedulerKind = "rr"
	sm.rrStart = 7
	order := sm.schedOrder()
	if order[0] != 7 || order[1] != 8 {
		t.Fatalf("RR order should rotate from rrStart: %v", order[:3])
	}
}

func TestTLBCountsTranslations(t *testing.T) {
	g, sm, w := harness(t, simpleKernel(t))
	in := isa.New(isa.LD)
	in.Dst, in.Src[0] = 18, 17
	// Dense access: one page.
	for tid := 0; tid < 32; tid++ {
		w.regs[17][tid] = 0x10000 + uint64(4*tid)
	}
	if !sm.setupMem(w, in, 0) {
		t.Fatal("setupMem failed")
	}
	if sm.tlb.Stats.Accesses != 1 {
		t.Fatalf("TLB accesses = %d, want 1 (one page)", sm.tlb.Stats.Accesses)
	}
	if sm.tlb.Stats.Hits != 0 {
		t.Fatal("cold TLB should miss")
	}
	// The page walk delays the micro-ops.
	if w.memq[0].readyAt == 0 {
		t.Fatal("TLB miss did not delay the access")
	}
	// Same page again: a hit, no delay.
	w.memq = nil
	w.pc = 2
	if !sm.setupMem(w, in, 1_000_000_000) {
		t.Fatal("setupMem failed")
	}
	if sm.tlb.Stats.Hits != 1 {
		t.Fatalf("TLB hits = %d, want 1", sm.tlb.Stats.Hits)
	}
	if w.memq[0].readyAt > 1_000_000_000 {
		t.Fatal("TLB hit should not delay the access")
	}
	_ = g
}

func TestMaxResidentCTAsScratchpadLimit(t *testing.T) {
	kb := kernel.NewBuilder()
	kb.Exit()
	k := kb.MustBuild("smem", 64, 64)
	k.SmemBytes = 20 << 10 // 20 KB per CTA of a 48 KB scratchpad
	_, sm, _ := harness(t, k)
	if got := sm.maxResidentCTAs(); got != 2 {
		t.Fatalf("resident CTAs = %d, want 2 (scratchpad limit)", got)
	}
}
