// Command ndpreport inspects and compares the simulator's machine-readable
// outputs: metrics runs (ndpsim -metrics), golden statistic digests, and
// benchmark records.
//
// Usage:
//
//	ndpreport show run.json                   # sparkline summary of a metrics run
//	ndpreport diff a.json b.json              # numeric-leaf diff, nonzero exit on drift
//	ndpreport diff -tol 0.05 a.json b.json
//	ndpreport diff -tolprefix 'spans=0.1;series=0.02' a.json b.json
//	ndpreport golden -out golden.json         # recompute the golden digests
//	ndpreport benchgate -bench out.txt -ref BENCH_pr4.json
//	ndpreport scaling -out scaling_curve.json # executor scaling curve
//	ndpreport bench-history                   # trend table across BENCH_*.json
//
// Exit status: 0 success / no drift, 1 drift or gate failure, 2 usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"ndpgpu/internal/config"
	"ndpgpu/internal/experiments"
	"ndpgpu/internal/metrics"
	"ndpgpu/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(werr io.Writer) int {
	fmt.Fprintln(werr, "usage: ndpreport <show|diff|golden|benchgate|scaling|bench-history> [flags] [args]")
	return 2
}

func run(args []string, w, werr io.Writer) int {
	if len(args) == 0 {
		return usage(werr)
	}
	switch args[0] {
	case "show":
		return runShow(args[1:], w, werr)
	case "diff":
		return runDiff(args[1:], w, werr)
	case "golden":
		return runGolden(args[1:], w, werr)
	case "benchgate":
		return runBenchgate(args[1:], w, werr)
	case "scaling":
		return runScaling(args[1:], w, werr)
	case "bench-history":
		return runBenchHistory(args[1:], w, werr)
	default:
		fmt.Fprintf(werr, "ndpreport: unknown subcommand %q\n", args[0])
		return usage(werr)
	}
}

// runShow prints a sparkline per series of a metrics run.
func runShow(args []string, w, werr io.Writer) int {
	fs := flag.NewFlagSet("ndpreport show", flag.ContinueOnError)
	fs.SetOutput(werr)
	width := fs.Int("width", 60, "sparkline width in glyphs")
	track := fs.String("track", "", "only show series on this track")
	if err := fs.Parse(args); err != nil || fs.NArg() != 1 {
		fmt.Fprintln(werr, "usage: ndpreport show [-width N] [-track name] run.json")
		return 2
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(werr, "ndpreport:", err)
		return 2
	}
	var r metrics.Run
	if err := json.Unmarshal(data, &r); err != nil {
		fmt.Fprintln(werr, "ndpreport:", err)
		return 2
	}
	if r.Schema != metrics.Schema {
		fmt.Fprintf(werr, "ndpreport: %s: schema %q, want %q\n", fs.Arg(0), r.Schema, metrics.Schema)
		return 2
	}
	var endPS int64
	if n := len(r.TimesPS); n > 0 {
		endPS = r.TimesPS[n-1]
	}
	fmt.Fprintf(w, "%s  interval=%d cycles  samples=%d  end=%.3f us",
		fs.Arg(0), r.IntervalCycles, len(r.TimesPS), float64(endPS)/1e6)
	if len(r.Meta) > 0 {
		keys := make([]string, 0, len(r.Meta))
		for k := range r.Meta {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %s=%s", k, r.Meta[k])
		}
	}
	fmt.Fprintln(w)
	for _, s := range r.Series {
		if *track != "" && s.Track != *track {
			continue
		}
		min, max, last := seriesRange(s.Samples)
		fmt.Fprintf(w, "%-28s %s  min=%-10.4g max=%-10.4g last=%-10.4g %s\n",
			s.Track+"/"+s.Name, metrics.Sparkline(s.Samples, *width), min, max, last, s.Unit)
	}
	if len(r.Spans) > 0 {
		var sum int64
		for _, sp := range r.Spans {
			sum += sp.DurPS
		}
		fmt.Fprintf(w, "%d offload round trips, %.2f us avg", len(r.Spans),
			float64(sum)/float64(len(r.Spans))/1e6)
		if r.SpansDropped > 0 {
			fmt.Fprintf(w, " (%d dropped past the retention cap)", r.SpansDropped)
		}
		fmt.Fprintln(w)
	}
	return 0
}

func seriesRange(samples []float64) (min, max, last float64) {
	if len(samples) == 0 {
		return 0, 0, 0
	}
	min, max = samples[0], samples[0]
	for _, v := range samples {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max, samples[len(samples)-1]
}

// runDiff compares the numeric leaves of two JSON documents.
func runDiff(args []string, w, werr io.Writer) int {
	fs := flag.NewFlagSet("ndpreport diff", flag.ContinueOnError)
	fs.SetOutput(werr)
	tol := fs.Float64("tol", 0, "default relative tolerance")
	tolPrefix := fs.String("tolprefix", "", "per-prefix tolerances, 'prefix=tol;prefix=tol' (longest prefix wins)")
	if err := fs.Parse(args); err != nil || fs.NArg() != 2 {
		fmt.Fprintln(werr, "usage: ndpreport diff [-tol f] [-tolprefix 'p=f;p=f'] a.json b.json")
		return 2
	}
	tols := metrics.Tolerances{Default: *tol}
	if *tolPrefix != "" {
		tols.ByPrefix = map[string]float64{}
		for _, part := range strings.Split(*tolPrefix, ";") {
			k, v, ok := strings.Cut(part, "=")
			if !ok {
				fmt.Fprintf(werr, "ndpreport: bad -tolprefix entry %q (want prefix=tol)\n", part)
				return 2
			}
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				fmt.Fprintf(werr, "ndpreport: bad tolerance in %q: %v\n", part, err)
				return 2
			}
			tols.ByPrefix[k] = f
		}
	}
	a, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(werr, "ndpreport:", err)
		return 2
	}
	b, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(werr, "ndpreport:", err)
		return 2
	}
	drifts, err := metrics.DiffJSON(a, b, tols)
	if err != nil {
		fmt.Fprintln(werr, "ndpreport:", err)
		return 2
	}
	if len(drifts) == 0 {
		fmt.Fprintf(w, "no drift: %s == %s\n", fs.Arg(0), fs.Arg(1))
		return 0
	}
	fmt.Fprintf(w, "%d drifting leaves between %s and %s:\n", len(drifts), fs.Arg(0), fs.Arg(1))
	for _, d := range drifts {
		fmt.Fprintf(w, "  %s\n", d)
	}
	return 1
}

// runGolden recomputes the golden statistic digests and writes them as JSON.
func runGolden(args []string, w, werr io.Writer) int {
	fs := flag.NewFlagSet("ndpreport golden", flag.ContinueOnError)
	fs.SetOutput(werr)
	out := fs.String("out", "", "write the digests to this file (default stdout)")
	scale := fs.Int("scale", 1, "problem-size scale factor")
	if err := fs.Parse(args); err != nil || fs.NArg() != 0 {
		fmt.Fprintln(werr, "usage: ndpreport golden [-out file] [-scale N]")
		return 2
	}
	digests, err := experiments.GoldenDigests(sim.AuditConfig(), *scale)
	if err != nil {
		fmt.Fprintln(werr, "ndpreport:", err)
		return 1
	}
	dst := w
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(werr, "ndpreport:", err)
			return 2
		}
		defer f.Close()
		dst = f
	}
	enc := json.NewEncoder(dst)
	enc.SetIndent("", " ")
	if err := enc.Encode(digests); err != nil {
		fmt.Fprintln(werr, "ndpreport:", err)
		return 1
	}
	return 0
}

// scalingPoint is one (GOMAXPROCS, fusion width) cell of the scaling curve.
type scalingPoint struct {
	GOMAXPROCS int     `json:"gomaxprocs"`
	Fusion     int     `json:"fusion"` // requested FusionWidth (0 = auto)
	Par        int     `json:"par"`    // Config.Parallel used for the point
	NsPerOp    float64 `json:"ns_per_op"`
	VsSerial   float64 `json:"vs_serial"` // ns_per_op / serial_ns_per_op
}

// scalingDoc is the scaling_curve.json schema.
type scalingDoc struct {
	Schema         string         `json:"schema"`
	HostCPUs       int            `json:"host_cpus"`
	Workload       string         `json:"workload"`
	Mode           string         `json:"mode"`
	Scale          int            `json:"scale"`
	Reps           int            `json:"reps"`
	SerialNsPerOp  float64        `json:"serial_ns_per_op"`
	Curve          []scalingPoint `json:"curve"`
	QuiescentBatch bool           `json:"quiescent_batch"`
}

// parseIntList parses "1,2,4" into ints.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad list entry %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// runScaling measures the parallel executor's wall-clock cost across a
// GOMAXPROCS x fusion-width grid (in process, via runtime.GOMAXPROCS) against
// a serial reference, and emits the curve as JSON. Each point is the best of
// -reps timed runs — the minimum is the standard noise filter for wall-clock
// microbenchmarks. The parallel machinery stays engaged even at GOMAXPROCS=1
// (par is clamped to >= 2), so the curve isolates executor overhead from host
// parallelism.
func runScaling(args []string, w, werr io.Writer) int {
	fs := flag.NewFlagSet("ndpreport scaling", flag.ContinueOnError)
	fs.SetOutput(werr)
	out := fs.String("out", "", "write the curve to this file (default stdout)")
	workload := fs.String("workload", "VADD", "workload abbreviation")
	modeStr := fs.String("mode", "dyncache", "simulation mode")
	scale := fs.Int("scale", 1, "problem-size scale factor")
	procsStr := fs.String("procs", "1,2,4,8", "GOMAXPROCS values, comma-separated")
	fuseStr := fs.String("fuse", "0,2,8,72", "fusion widths, comma-separated (0 = auto)")
	reps := fs.Int("reps", 1, "timed repetitions per point (best is kept)")
	noBatch := fs.Bool("nobatch", false, "disable quiescence-batched phases")
	if err := fs.Parse(args); err != nil || fs.NArg() != 0 {
		fmt.Fprintln(werr, "usage: ndpreport scaling [-out file] [-workload W] [-mode M] [-procs 1,2,4] [-fuse 0,2,72] [-reps N] [-nobatch]")
		return 2
	}
	procs, err := parseIntList(*procsStr)
	if err != nil {
		fmt.Fprintln(werr, "ndpreport:", err)
		return 2
	}
	fuses, err := parseIntList(*fuseStr)
	if err != nil {
		fmt.Fprintln(werr, "ndpreport:", err)
		return 2
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	timePoint := func(cfg config.Config) (float64, error) {
		m, cfg, err := sim.ParseMode(*modeStr, cfg)
		if err != nil {
			return 0, err
		}
		best := 0.0
		for r := 0; r < *reps; r++ {
			start := time.Now()
			run := experiments.RunOne(cfg, *workload, m, *scale)
			d := float64(time.Since(start).Nanoseconds())
			if run.Err != nil {
				return 0, run.Err
			}
			if best == 0 || d < best {
				best = d
			}
		}
		return best, nil
	}

	doc := scalingDoc{
		Schema:         "ndpgpu-scaling-v1",
		HostCPUs:       runtime.NumCPU(),
		Workload:       *workload,
		Mode:           *modeStr,
		Scale:          *scale,
		Reps:           *reps,
		QuiescentBatch: !*noBatch,
	}

	serialCfg := config.Default()
	serialCfg.Parallel = 1
	doc.SerialNsPerOp, err = timePoint(serialCfg)
	if err != nil {
		fmt.Fprintln(werr, "ndpreport:", err)
		return 1
	}
	fmt.Fprintf(werr, "scaling: serial %.0f ms/op\n", doc.SerialNsPerOp/1e6)

	for _, p := range procs {
		runtime.GOMAXPROCS(p)
		for _, fw := range fuses {
			cfg := config.Default()
			cfg.Parallel = p
			if cfg.Parallel < 2 {
				cfg.Parallel = 2
			}
			cfg.FusionWidth = fw
			cfg.NoQuiescentBatch = *noBatch
			ns, err := timePoint(cfg)
			if err != nil {
				fmt.Fprintln(werr, "ndpreport:", err)
				return 1
			}
			pt := scalingPoint{
				GOMAXPROCS: p, Fusion: fw, Par: cfg.Parallel,
				NsPerOp: ns, VsSerial: ns / doc.SerialNsPerOp,
			}
			doc.Curve = append(doc.Curve, pt)
			fmt.Fprintf(werr, "scaling: procs=%d fuse=%d par=%d %.0f ms/op (%.2fx serial)\n",
				p, fw, pt.Par, ns/1e6, pt.VsSerial)
		}
	}
	runtime.GOMAXPROCS(prev)

	dst := w
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(werr, "ndpreport:", err)
			return 2
		}
		defer f.Close()
		dst = f
	}
	enc := json.NewEncoder(dst)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(werr, "ndpreport:", err)
		return 1
	}
	return 0
}

// benchLine matches one go-test benchmark result line, with the optional
// -benchmem columns (custom metrics like "simulated-us" may sit in between):
// "BenchmarkSingleRunVADD-8   5   535806004 ns/op   16.58 simulated-us   174010854 B/op   234256 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op(?:.*?\s(\d+) B/op\s+(\d+) allocs/op)?`)

// hostFingerprint describes the machine a benchmark record was taken on.
// Wall-clock numbers are only comparable between identical fingerprints;
// allocation counts survive a CPU change but not a Go toolchain change.
type hostFingerprint struct {
	CPUModel  string `json:"cpu_model"`
	NProc     int    `json:"nproc"`
	GoVersion string `json:"go_version"`
}

// currentHost reads this machine's fingerprint. The CPU model comes from
// /proc/cpuinfo and is empty on platforms without it — an empty model only
// matches an empty model, which is the safe direction (mismatch relaxes the
// gate rather than tightening it).
func currentHost() hostFingerprint {
	h := hostFingerprint{NProc: runtime.NumCPU(), GoVersion: runtime.Version()}
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
				h.CPUModel = strings.TrimSpace(v)
				break
			}
		}
	}
	return h
}

// benchResult is one parsed benchmark line.
type benchResult struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
}

// parseBench extracts the named benchmark's result from go test -bench
// output (last occurrence wins, matching go test's own repetition semantics).
func parseBench(data, name string) (benchResult, bool) {
	var r benchResult
	found := false
	for _, line := range strings.Split(data, "\n") {
		mm := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if mm == nil || mm[1] != name {
			continue
		}
		r.nsPerOp, _ = strconv.ParseFloat(mm[2], 64)
		if mm[3] != "" {
			r.bytesPerOp, _ = strconv.ParseFloat(mm[3], 64)
			r.allocsPerOp, _ = strconv.ParseFloat(mm[4], 64)
		}
		found = true
	}
	return r, found
}

// benchRefDoc is the subset of a BENCH_*.json record the gate reads.
type benchRefDoc struct {
	Host  *hostFingerprint `json:"host"`
	Macro struct {
		SerialNsPerOp     float64 `json:"serial_ns_per_op"`
		SerialAllocsPerOp float64 `json:"serial_allocs_per_op"`
	} `json:"macro"`
}

// runBenchgate compares a benchmark run against a recorded reference,
// failing only on slowdowns beyond the slack (speedups just warn, so a
// faster host never breaks the gate). When the reference carries a host
// fingerprint and it does not match this machine, the wall-clock gate
// relaxes to report-only — cross-host ns/op comparisons are noise, and a
// hard gate on them would train people to ignore failures. The allocation
// gate (allocs/op, when both sides record it) is count-based and
// host-independent, so it stays hard across CPU changes and relaxes only
// when the Go toolchain differs.
func runBenchgate(args []string, w, werr io.Writer) int {
	fs := flag.NewFlagSet("ndpreport benchgate", flag.ContinueOnError)
	fs.SetOutput(werr)
	bench := fs.String("bench", "", "go test -bench output file")
	ref := fs.String("ref", "BENCH_pr4.json", "reference record with macro.serial_ns_per_op")
	name := fs.String("name", "BenchmarkSingleRunVADD", "benchmark to gate")
	slack := fs.Float64("slack", 0.25, "allowed relative slowdown")
	allocSlack := fs.Float64("allocslack", 0.10, "allowed relative allocs/op regression")
	if err := fs.Parse(args); err != nil || *bench == "" || fs.NArg() != 0 {
		fmt.Fprintln(werr, "usage: ndpreport benchgate -bench out.txt [-ref BENCH_pr4.json] [-name B] [-slack f] [-allocslack f]")
		return 2
	}
	data, err := os.ReadFile(*bench)
	if err != nil {
		fmt.Fprintln(werr, "ndpreport:", err)
		return 2
	}
	got, found := parseBench(string(data), *name)
	if !found {
		fmt.Fprintf(werr, "ndpreport: no %s result in %s\n", *name, *bench)
		return 2
	}
	refData, err := os.ReadFile(*ref)
	if err != nil {
		fmt.Fprintln(werr, "ndpreport:", err)
		return 2
	}
	var doc benchRefDoc
	if err := json.Unmarshal(refData, &doc); err != nil {
		fmt.Fprintln(werr, "ndpreport:", err)
		return 2
	}
	want := doc.Macro.SerialNsPerOp
	if want <= 0 {
		fmt.Fprintf(werr, "ndpreport: %s has no macro.serial_ns_per_op\n", *ref)
		return 2
	}

	timeGate, allocGate := true, true
	if doc.Host != nil {
		here := currentHost()
		if *doc.Host != here {
			timeGate = false
			fmt.Fprintf(w, "WARNING: host fingerprint mismatch — wall-clock gate is REPORT-ONLY\n")
			fmt.Fprintf(w, "  reference: cpu=%q nproc=%d go=%s\n", doc.Host.CPUModel, doc.Host.NProc, doc.Host.GoVersion)
			fmt.Fprintf(w, "  this host: cpu=%q nproc=%d go=%s\n", here.CPUModel, here.NProc, here.GoVersion)
			if doc.Host.GoVersion != here.GoVersion {
				allocGate = false
				fmt.Fprintf(w, "  Go toolchain differs too: allocation gate is also report-only\n")
			}
			fmt.Fprintf(w, "  re-record the reference on this host to restore the hard gate\n")
		}
	}

	fail := false
	rel := got.nsPerOp/want - 1
	fmt.Fprintf(w, "%s: %.0f ns/op vs reference %.0f ns/op (%+.1f%%, slack ±%.0f%%)\n",
		*name, got.nsPerOp, want, 100*rel, 100**slack)
	if rel > *slack {
		if timeGate {
			fmt.Fprintf(w, "FAIL: slower than the reference beyond the slack\n")
			fail = true
		} else {
			fmt.Fprintf(w, "note: beyond the slack, tolerated (fingerprint mismatch)\n")
		}
	}
	if rel < -*slack {
		fmt.Fprintf(w, "note: faster than the reference beyond the slack — consider refreshing %s\n", *ref)
	}

	if wantAllocs := doc.Macro.SerialAllocsPerOp; wantAllocs > 0 && got.allocsPerOp > 0 {
		arel := got.allocsPerOp/wantAllocs - 1
		fmt.Fprintf(w, "%s: %.0f allocs/op vs reference %.0f allocs/op (%+.1f%%, slack +%.0f%%)\n",
			*name, got.allocsPerOp, wantAllocs, 100*arel, 100**allocSlack)
		if arel > *allocSlack {
			if allocGate {
				fmt.Fprintf(w, "FAIL: allocs/op regressed beyond the slack\n")
				fail = true
			} else {
				fmt.Fprintf(w, "note: allocs/op beyond the slack, tolerated (Go toolchain mismatch)\n")
			}
		}
	}

	if fail {
		return 1
	}
	fmt.Fprintln(w, "ok")
	return 0
}

// benchHistoryRow is one BENCH_*.json record reduced to its trend numbers.
type benchHistoryRow struct {
	file    string
	pr      int
	ns      float64
	allocs  float64
	bytes   float64
	host    string
	goVer   string
	caveat  bool // record flags its own host as incomparable to the prior row
	hasHost bool
}

// benchHistoryNums digs the serial ns/op, allocs/op, and B/op out of one
// record. The schema grew across PRs: pr1 used macro.after.*, pr2 used
// macro.pr2.*, pr4 onward macro.serial_ns_per_op (+ serial_allocs_per_op
// from pr9). The lookup prefers the modern leaves, then the record's own
// "after"/"prN" sub-object.
func benchHistoryNums(raw map[string]any, prTag string) (ns, allocs, bytes float64) {
	macro, _ := raw["macro"].(map[string]any)
	if macro == nil {
		return 0, 0, 0
	}
	num := func(m map[string]any, k string) float64 {
		v, _ := m[k].(float64)
		return v
	}
	if v := num(macro, "serial_ns_per_op"); v > 0 {
		return v, num(macro, "serial_allocs_per_op"), num(macro, "serial_bytes_per_op")
	}
	for _, key := range []string{prTag, "after"} {
		if sub, ok := macro[key].(map[string]any); ok {
			if v := num(sub, "ns_per_op"); v > 0 {
				return v, num(sub, "allocs_per_op"), num(sub, "bytes_per_op")
			}
		}
	}
	return 0, 0, 0
}

var benchFilePR = regexp.MustCompile(`BENCH_pr(\d+)\.json$`)

// runBenchHistory merges every BENCH_*.json record into one trend table:
// per-PR serial ns/op with the step and cumulative speedups, plus allocs/op
// where recorded. Cross-host caveats are flagged per row — the table is a
// trajectory, not a controlled experiment, and rows from different hosts are
// explicitly marked as not directly comparable.
func runBenchHistory(args []string, w, werr io.Writer) int {
	fs := flag.NewFlagSet("ndpreport bench-history", flag.ContinueOnError)
	fs.SetOutput(werr)
	dir := fs.String("dir", ".", "directory holding BENCH_*.json records")
	if err := fs.Parse(args); err != nil {
		fmt.Fprintln(werr, "usage: ndpreport bench-history [-dir path] [files...]")
		return 2
	}
	files := fs.Args()
	if len(files) == 0 {
		matches, err := filepath.Glob(filepath.Join(*dir, "BENCH_*.json"))
		if err != nil || len(matches) == 0 {
			fmt.Fprintf(werr, "ndpreport: no BENCH_*.json records in %s\n", *dir)
			return 2
		}
		files = matches
	}
	var rows []benchHistoryRow
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(werr, "ndpreport:", err)
			return 2
		}
		var raw map[string]any
		if err := json.Unmarshal(data, &raw); err != nil {
			fmt.Fprintf(werr, "ndpreport: %s: %v\n", f, err)
			return 2
		}
		row := benchHistoryRow{file: filepath.Base(f), pr: 1 << 30}
		prTag := ""
		if mm := benchFilePR.FindStringSubmatch(f); mm != nil {
			row.pr, _ = strconv.Atoi(mm[1])
			prTag = "pr" + mm[1]
		}
		row.ns, row.allocs, row.bytes = benchHistoryNums(raw, prTag)
		if row.ns <= 0 {
			fmt.Fprintf(werr, "ndpreport: %s: no serial ns/op found, skipping\n", f)
			continue
		}
		if h, ok := raw["host"].(map[string]any); ok {
			row.hasHost = true
			row.host, _ = h["cpu_model"].(string)
			row.goVer, _ = h["go_version"].(string)
		}
		if _, ok := raw["host_caveat"]; ok {
			row.caveat = true
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		fmt.Fprintln(werr, "ndpreport: no usable records")
		return 1
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].pr < rows[j].pr })

	fmt.Fprintf(w, "%-16s %12s %9s %9s %12s %10s  %s\n",
		"record", "ns/op", "step", "vs first", "allocs/op", "MB/op", "host")
	first := rows[0].ns
	for i, r := range rows {
		step := "-"
		if i > 0 {
			step = fmt.Sprintf("%.2fx", rows[i-1].ns/r.ns)
		}
		alloc := "-"
		if r.allocs > 0 {
			alloc = fmt.Sprintf("%.0f", r.allocs)
		}
		mb := "-"
		if r.bytes > 0 {
			mb = fmt.Sprintf("%.1f", r.bytes/1e6)
		}
		host := "(unrecorded)"
		if r.hasHost {
			host = r.host
			if r.goVer != "" {
				host += " / " + r.goVer
			}
		}
		if r.caveat {
			host += "  [host drift vs prior rows — see host_caveat]"
		}
		fmt.Fprintf(w, "%-16s %12.0f %9s %8.2fx %12s %10s  %s\n",
			r.file, r.ns, step, first/r.ns, alloc, mb, host)
	}
	fmt.Fprintln(w, "\nns/op rows come from different machines unless the host column matches;")
	fmt.Fprintln(w, "treat cross-host steps as indicative only. allocs/op is host-independent.")
	return 0
}
