package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"ndpgpu/internal/stats"
)

// Client is a thin HTTP client for an ndpserve instance — the transport
// behind ndpsweep's -server client mode.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the server at base (e.g.
// "http://localhost:8347"). Requests have no client-side timeout: a cold
// full-size simulation can legitimately take minutes, and the server bounds
// its own admission.
func NewClient(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// Healthz probes the server's liveness endpoint.
func (c *Client) Healthz() error {
	hc := &http.Client{Timeout: 5 * time.Second}
	resp, err := hc.Get(c.base + "/healthz")
	if err != nil {
		return fmt.Errorf("ndpserve unreachable at %s: %w", c.base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("ndpserve %s/healthz: %s", c.base, resp.Status)
	}
	return nil
}

// Run submits one request and decodes the result. The server's 429
// backpressure is honored transparently: the client sleeps the advertised
// Retry-After (capped) and retries, so a sweep pointed at a busy server
// degrades to queuing client-side instead of failing.
func (c *Client) Run(rr RunRequest) (*RunResponse, *stats.Stats, error) {
	body, err := json.Marshal(rr)
	if err != nil {
		return nil, nil, err
	}
	for {
		resp, retry, err := c.post(body)
		if err != nil {
			return nil, nil, err
		}
		if retry > 0 {
			time.Sleep(retry)
			continue
		}
		var st *stats.Stats
		if len(resp.Stats) > 0 {
			st = new(stats.Stats)
			if err := json.Unmarshal(resp.Stats, st); err != nil {
				return nil, nil, fmt.Errorf("decoding stats bundle: %w", err)
			}
		}
		return resp, st, nil
	}
}

// post performs one POST /run; a 429 returns a positive retry delay.
func (c *Client) post(body []byte) (*RunResponse, time.Duration, error) {
	resp, err := c.hc.Post(c.base+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		delay := time.Second
		if s := resp.Header.Get("Retry-After"); s != "" {
			var secs int
			if _, err := fmt.Sscanf(s, "%d", &secs); err == nil && secs > 0 {
				delay = time.Duration(secs) * time.Second
			}
		}
		if delay > 10*time.Second {
			delay = 10 * time.Second
		}
		io.Copy(io.Discard, resp.Body)
		return nil, delay, nil
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if json.Unmarshal(data, &eb) == nil && eb.Error != "" {
			return nil, 0, fmt.Errorf("ndpserve: %s: %s", resp.Status, eb.Error)
		}
		return nil, 0, fmt.Errorf("ndpserve: %s", resp.Status)
	}
	var rr RunResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		return nil, 0, fmt.Errorf("decoding run response: %w", err)
	}
	return &rr, 0, nil
}
