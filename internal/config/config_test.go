package config

import (
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestPresetsValidate(t *testing.T) {
	for name, c := range map[string]Config{
		"MoreCore":      MoreCore(),
		"DoubleCompute": DoubleCompute(),
		"HalfNSUClock":  HalfNSUClock(),
	} {
		if err := c.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
}

func TestMoreCoreAddsOneSMPerHMC(t *testing.T) {
	base, mc := Default(), MoreCore()
	if got, want := mc.GPU.NumSMs, base.GPU.NumSMs+base.NumHMCs; got != want {
		t.Fatalf("MoreCore SMs = %d, want %d", got, want)
	}
}

func TestDoubleComputeDoublesSMs(t *testing.T) {
	base, dc := Default(), DoubleCompute()
	if dc.GPU.NumSMs != 2*base.GPU.NumSMs {
		t.Fatalf("DoubleCompute SMs = %d, want %d", dc.GPU.NumSMs, 2*base.GPU.NumSMs)
	}
}

func TestHalfNSUClock(t *testing.T) {
	if got := HalfNSUClock().NSU.ClockMHz; got != 175 {
		t.Fatalf("HalfNSUClock = %d MHz, want 175", got)
	}
}

func TestCacheGeomSets(t *testing.T) {
	g := CacheGeom{SizeBytes: 32 << 10, Ways: 4, LineBytes: 128}
	if got := g.Sets(); got != 64 {
		t.Fatalf("Sets() = %d, want 64", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
}

func TestCacheGeomRejectsNonPow2Sets(t *testing.T) {
	g := CacheGeom{SizeBytes: 3 * 128 * 4, Ways: 4, LineBytes: 128} // 3 sets
	if err := g.Validate(); err == nil {
		t.Fatal("expected error for non-power-of-two set count")
	}
}

func TestCacheGeomRejectsZero(t *testing.T) {
	if err := (CacheGeom{}).Validate(); err == nil {
		t.Fatal("expected error for zero geometry")
	}
}

func TestValidateRejectsBadHMCCount(t *testing.T) {
	c := Default()
	c.NumHMCs = 6
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for non-power-of-two HMC count")
	}
	c.NumHMCs = 0
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for zero HMC count")
	}
}

func TestValidateRejectsWarpWidthMismatch(t *testing.T) {
	c := Default()
	c.NSU.WarpWidth = 16
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for NSU/GPU warp width mismatch")
	}
}

func TestValidateRejectsBadThreadCount(t *testing.T) {
	c := Default()
	c.GPU.MaxThreadsPerSM = 1000 // not a multiple of 32
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for non-multiple thread count")
	}
}

func TestValidateRejectsBadPageSize(t *testing.T) {
	c := Default()
	c.Mem.PageBytes = 3000
	if err := c.Validate(); err == nil {
		t.Fatal("expected error for non-power-of-two page size")
	}
}

func TestPacketBufferOverhead(t *testing.T) {
	c := Default()
	// §7.5: 8 B x 300 pending + 8 B x 64 ready = 2912 B = 2.84 KB.
	if got := c.PacketBufferBytesPerSM(); got != 2912 {
		t.Fatalf("packet buffer bytes = %d, want 2912", got)
	}
	frac := float64(c.PacketBufferBytesPerSM()) / float64(c.OnChipStorageBytesPerSM())
	// Paper reports 1.8% of on-chip storage.
	if frac < 0.01 || frac > 0.035 {
		t.Fatalf("overhead fraction = %.4f, want ~0.018", frac)
	}
}

func TestWarpsPerSM(t *testing.T) {
	if got := Default().WarpsPerSM(); got != 48 {
		t.Fatalf("WarpsPerSM = %d, want 48", got)
	}
}

func TestSetsAlwaysDividesSize(t *testing.T) {
	// Property: for any valid geometry, Sets()*Ways*LineBytes == SizeBytes.
	f := func(setsLog, waysLog uint8) bool {
		sets := 1 << (setsLog % 10)
		ways := 1 << (waysLog % 4)
		g := CacheGeom{SizeBytes: sets * ways * 128, Ways: ways, LineBytes: 128}
		if err := g.Validate(); err != nil {
			return false
		}
		return g.Sets()*g.Ways*g.LineBytes == g.SizeBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
